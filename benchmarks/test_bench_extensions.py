"""Benchmarks for the paper's open questions and future-work extensions.

* question 2 — combination of resources (single vs combined borrowing);
* linger-longer scheduling vs the screensaver default (the §1/§5 framing:
  today's systems are needlessly conservative);
* Kaplan-Meier vs the paper's naive CDF under heterogeneous censoring
  (what the Internet study's variable-peak testcases require).
"""

import numpy as np
import pytest

from conftest import write_artifact
from repro.analysis.survival import kaplan_meier
from repro.apps import get_task
from repro.core.metrics import DiscomfortCDF, DiscomfortObservation
from repro.core.resources import Resource
from repro.machine import SimulatedMachine
from repro.study import run_combination_study
from repro.throttle import (
    ActivityModel,
    BackgroundBorrower,
    Throttle,
    cdf_operating_point,
    linger_longer,
    screensaver,
)
from repro.users import make_user, sample_population
from repro.util.tables import TextTable


def test_bench_combination_of_resources(benchmark, artifacts_dir):
    """Question 2: borrowing CPU+disk together vs separately (IE task)."""
    result = benchmark.pedantic(
        run_combination_study,
        args=("ie", (Resource.CPU, Resource.DISK)),
        kwargs=dict(n_users=33, seed=42),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        "Question 2: single vs combined resource borrowing (IE, 33 users)",
        ["arm", "f_d", "c_a on CPU"],
    )
    table.add_row(
        "cpu only", f"{result.f_d_single[Resource.CPU]:.2f}",
        f"{result.c_a_single[Resource.CPU]:.2f}",
    )
    table.add_row(
        "disk only", f"{result.f_d_single[Resource.DISK]:.2f}", "-",
    )
    table.add_row(
        "cpu + disk", f"{result.f_d_combined:.2f}",
        f"{result.c_a_combined_first:.2f}",
    )
    write_artifact(
        artifacts_dir, "combination_resources.txt",
        table.render() + f"\nunion effect: +{result.union_effect:.2f} f_d",
    )
    # The union effect: combined borrowing discomforts more often than
    # either resource alone, and at no higher CPU levels.
    assert result.f_d_combined >= max(result.f_d_single.values()) - 0.05
    assert result.c_a_combined_first <= result.c_a_single[Resource.CPU] + 0.15


def test_bench_linger_longer_vs_screensaver(benchmark, artifacts_dir):
    """The paper's §1 framing quantified: how much work do conservative
    policies leave on the table against a part-time user?"""
    activity = ActivityModel(mean_active=1200.0, mean_idle=600.0)
    machine = SimulatedMachine()
    task = get_task("powerpoint")
    profile = sample_population(1, seed=13)[0]
    horizon = 8 * 3600.0

    def run_policy(policy, seed):
        user = make_user(profile, seed=seed)
        borrower = BackgroundBorrower(
            machine, task, user, Throttle(Resource.CPU, 8.0)
        )
        return borrower.run(
            work=1e9, horizon=horizon, request=policy,
            activity=activity, activity_seed=5,
        )

    def compare():
        return {
            "screensaver": run_policy(screensaver(8.0), 41),
            "linger-longer (0.3)": run_policy(linger_longer(0.3, 8.0), 41),
            "CDF 5% constant": run_policy(cdf_operating_point(0.34), 41),
        }

    reports = benchmark.pedantic(compare, rounds=1, iterations=1)
    table = TextTable(
        "Harvest over 8h against a part-time Powerpoint user "
        f"(active {activity.active_fraction:.0%} of the time)",
        ["policy", "cpu-s harvested", "vs screensaver", "discomforts"],
    )
    base = reports["screensaver"].work_done
    for name, report in reports.items():
        table.add_row(
            name, f"{report.work_done:.0f}",
            f"{report.work_done / base:.2f}x", report.discomfort_events,
        )
    write_artifact(artifacts_dir, "linger_longer.txt", table.render())

    assert reports["screensaver"].discomfort_events == 0
    assert (
        reports["linger-longer (0.3)"].work_done
        > reports["screensaver"].work_done
    )
    # Linger-longer's low level stays under the discomfort radar almost
    # always (the whole point of combining it with comfort CDFs).
    assert reports["linger-longer (0.3)"].discomfort_events <= 2


def test_bench_km_vs_naive_under_censoring(benchmark, artifacts_dir):
    """Internet-study-style data (testcases with different peaks) biases
    the naive CDF down; Kaplan-Meier corrects it."""
    rng = np.random.default_rng(7)
    # Ground truth: lognormal thresholds, median ~1.6.
    true_thresholds = np.exp(rng.normal(0.5, 0.5, size=400))
    observations = []
    for threshold in true_thresholds:
        peak = float(rng.uniform(0.5, 8.0))  # heterogeneous testcase peaks
        if threshold <= peak:
            observations.append(DiscomfortObservation(
                level=float(threshold), censored=False, resource=Resource.CPU,
            ))
        else:
            observations.append(DiscomfortObservation(
                level=peak, censored=True, resource=Resource.CPU,
            ))

    km = benchmark(kaplan_meier, observations)
    naive = DiscomfortCDF(observations)

    table = TextTable(
        "P(discomfort <= level): truth vs naive CDF vs Kaplan-Meier "
        "(heterogeneous censoring)",
        ["level", "truth", "naive", "KM"],
    )
    errors_naive, errors_km = [], []
    for level in (0.5, 1.0, 2.0, 3.0, 5.0):
        truth = float(np.mean(true_thresholds <= level))
        n = naive.evaluate(level)
        k = km.evaluate(level)
        errors_naive.append(abs(n - truth))
        errors_km.append(abs(k - truth))
        table.add_row(f"{level:.1f}", f"{truth:.3f}", f"{n:.3f}", f"{k:.3f}")
    write_artifact(artifacts_dir, "km_vs_naive.txt", table.render())

    # KM is strictly better where censoring bites (higher levels).
    assert sum(errors_km) < sum(errors_naive)
    assert errors_km[-1] < errors_naive[-1]
