"""Push-gateway throughput with the fleet dashboard on and off.

The web dashboard must be effectively free for the fleet being
observed: the ``/push`` hot path gained per-client liveness stamps,
history ring-buffer samples, discomfort-feed deltas, and (only while a
reader is attached) SSE frame fan-out.  This benchmark measures
aggregate pushes/second through a live exporter in three modes and
fails if either dashboard mode costs more than ``--max-overhead-pct``
(default 5%) against the ``web-off`` baseline of the same run:

* ``web-off``       — ``MetricsExporter(web=False)``: the pre-dashboard
  push path (store the snapshot, bump rollups);
* ``web-on-idle``   — dashboard routes enabled, no SSE subscriber: the
  common case, since the extra work is skipped without readers;
* ``web-on-stream`` — an SSE reader attached and draining, so every
  push also builds its fleet row and broadcast frame.

Each mode runs ``--rounds`` interleaved rounds.  Throughput cells keep
the fastest round; overhead is judged per round against that same
round's ``web-off`` cell, keeping the minimum across rounds — a load
spike during either cell of a pair can only inflate its ratio, so the
minimum is the least noise-contaminated estimate of the true cost.
Results go to ``BENCH_dashboard.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_dashboard.py
    PYTHONPATH=src python benchmarks/bench_dashboard.py --pushes 300 --out fresh.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if __package__ in (None, ""):  # standalone: make `repro` importable
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro._version import __version__
from repro.core.session import DISCOMFORT_LEVEL_BUCKETS
from repro.telemetry.aggregate import push_snapshot
from repro.telemetry.exporter import MetricsExporter
from repro.telemetry.metrics import MetricsRegistry

MODES = ("web-off", "web-on-idle", "web-on-stream")


def client_snapshots(worker: int, count: int) -> list[dict]:
    """A worker's push sequence: counters grow, the CDF gains mass.

    The registry mirrors what a real study client's process hub pushes
    — run/sync/retry/byte counters, session-duration histogram,
    calibration and borrow gauges, discomfort CDF — so the baseline
    per-push parse/store cost is representative rather than a toy
    three-family body that makes the dashboard bookkeeping look
    artificially large.  Pre-built outside the timed region so every
    mode pays identical serialization cost and the measurement isolates
    the exporter side.
    """
    registry = MetricsRegistry()
    runs = registry.counter(
        "uucs_client_runs_total", "runs", labelnames=("outcome",)
    )
    syncs = registry.counter("uucs_client_syncs_total", "syncs")
    retries = registry.counter("uucs_client_retries_total", "retries")
    reconnects = registry.counter("uucs_client_reconnects_total", "reconnects")
    uploaded = registry.counter("uucs_client_uploaded_total", "bytes up")
    downloaded = registry.counter("uucs_client_downloaded_total", "bytes down")
    budget = registry.counter("uucs_throttle_budget_spent_total", "budget")
    borrow = registry.gauge("uucs_throttle_ceiling", "borrow")
    calibration = registry.gauge(
        "uucs_calibration_iterations_per_ms", "calibration"
    )
    duration = registry.histogram(
        "uucs_session_duration_seconds",
        "session seconds",
        labelnames=("task",),
        buckets=(0.5, 1.0, 2.0, 5.0, 10.0, 30.0),
    )
    discomfort = registry.histogram(
        "uucs_discomfort_level",
        "levels",
        labelnames=("task", "resource"),
        buckets=DISCOMFORT_LEVEL_BUCKETS,
    )
    calibration.set(412.0 + worker)
    snapshots = []
    for i in range(count):
        runs.inc(outcome="exhausted" if i % 4 else "discomfort")
        syncs.inc()
        uploaded.inc(1024 + 16 * (i % 32))
        downloaded.inc(256)
        budget.inc(0.05)
        if i % 16 == 0:
            retries.inc()
        if i % 64 == 0:
            reconnects.inc()
        borrow.set(0.1 + 0.05 * (i % 8))
        duration.observe(0.4 + 0.2 * (i % 12), task="word")
        if i % 4 == 0:
            discomfort.observe(
                0.1 + 0.1 * (i % 10), task="word", resource="cpu"
            )
        snapshots.append(registry.snapshot())
    return snapshots


def _drain_stream(host: str, port: int, ready: threading.Event):
    """Attach as an SSE subscriber and discard frames until closed."""
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"GET /stream HTTP/1.0\r\n\r\n")
        buffer = b""
        while b"event: hello" not in buffer:
            buffer += sock.recv(65536)
        ready.set()
        sock.settimeout(10)
        try:
            while sock.recv(65536):
                pass
        except (TimeoutError, OSError):
            pass


def run_mode(mode: str, pushes: int, workers: int) -> dict:
    per_worker = pushes // workers
    sequences = [client_snapshots(w, per_worker) for w in range(workers)]
    with MetricsExporter(MetricsRegistry(), web=mode != "web-off") as exporter:
        host, port = exporter.address
        reader = None
        if mode == "web-on-stream":
            ready = threading.Event()
            reader = threading.Thread(
                target=_drain_stream, args=(host, port, ready), daemon=True
            )
            reader.start()
            if not ready.wait(timeout=10):
                raise RuntimeError("SSE reader never attached")

        def hammer(worker: int):
            for snapshot in sequences[worker]:
                push_snapshot(host, port, f"bench-{worker}", snapshot)

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for _ in pool.map(hammer, range(workers)):
                pass
        wall = time.perf_counter() - started
        if mode == "web-on-stream":
            assert exporter.broker.subscribers == 1, "reader fell off mid-run"
    total = per_worker * workers
    return {
        "mode": mode,
        "pushes": total,
        "clients": workers,
        "wall_seconds": round(wall, 4),
        "pushes_per_second": round(total / wall, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pushes", type=int, default=600,
                        help="pushes per cell (default 600)")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent pushing clients (default 4)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds per mode; fastest kept (default 3)")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0,
                        help="fail if a dashboard mode is this much slower "
                             "than web-off (default 5%%)")
    parser.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_dashboard.json"))
    args = parser.parse_args(argv)

    # A warm-up round primes import caches, thread pools, and the TCP
    # stack; rounds are interleaved across modes so machine-load drift
    # during the run biases every mode equally.  Overhead is paired
    # within each round (mode vs. that round's web-off) and the minimum
    # across rounds is kept: a scheduler hiccup during either cell of a
    # pair only ever inflates the ratio, so comparing each mode's
    # luckiest round against web-off's luckiest round would report
    # noise as overhead.
    run_mode("web-off", min(args.pushes, 200), args.workers)
    rounds: list[dict[str, dict]] = []
    for round_no in range(args.rounds):
        cells: dict[str, dict] = {}
        for mode in MODES:
            cell = run_mode(mode, args.pushes, args.workers)
            rate = cell["pushes_per_second"]
            print(f"{mode:>14} round {round_no + 1}: {rate:>8.1f} pushes/s")
            cells[mode] = cell
        rounds.append(cells)

    best = {
        mode: max(
            (cells[mode] for cells in rounds),
            key=lambda cell: cell["pushes_per_second"],
        )
        for mode in MODES
    }
    failures = []
    for mode in MODES:
        overhead = min(
            (1.0 - cells[mode]["pushes_per_second"]
             / cells["web-off"]["pushes_per_second"]) * 100.0
            for cells in rounds
        )
        best[mode]["overhead_pct"] = round(max(0.0, overhead), 2)
        if mode != "web-off" and overhead > args.max_overhead_pct:
            failures.append(
                f"{mode}: {overhead:.1f}% slower than web-off "
                f"(limit {args.max_overhead_pct:g}%)"
            )

    report = {
        "benchmark": "UUCS fleet dashboard push path (repro.telemetry)",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "version": __version__,
        "pushes_per_cell": args.pushes,
        "max_overhead_pct": args.max_overhead_pct,
        "results": [best[mode] for mode in MODES],
    }
    Path(args.out).write_text(json.dumps(report, indent=1) + "\n",
                              encoding="utf-8")
    print(f"report -> {args.out}")
    for mode in MODES:
        cell = best[mode]
        print(f"{mode:>14}: {cell['pushes_per_second']:>8.1f} pushes/s "
              f"(+{cell['overhead_pct']:.1f}% overhead)")
    if failures:
        for failure in failures:
            print(f"OVERHEAD: {failure}", file=sys.stderr)
        return 1
    print(f"OK: dashboard overhead within {args.max_overhead_pct:g}% of web-off")
    return 0


if __name__ == "__main__":
    sys.exit(main())
