"""Wall-clock scaling of the study engines: shards and session engines.

Times the canonical seed-2004 controlled study at several shard counts,
verifies every run produced byte-identical records, and writes the
measurements to ``BENCH_study.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_study_shards.py
    PYTHONPATH=src python benchmarks/bench_study_shards.py --shards 1 2 4 8 --repeat 3

Speedup is reported against the 1-shard (in-process) run.  The engine's
compute is embarrassingly parallel, so on an N-core host the expected
ceiling is ~N x minus pool startup and result-pickling IPC; a 1-core
host will show a slowdown for every shard count > 1, which the JSON
records honestly (see ``host.cpus``).

The report also carries **engine cells** (``--engines``): each session
engine timed on the canonical 33-user study, plus a fleet-scale cell
(``--scale-users``, default 20000) for engines with a batched user-range
path, where per-cell template caches amortize.  Engines are measured *as
shipped* — the batch engine pauses the cyclic GC internally as part of
its design; the harness adds no GC games of its own.  Each batch cell's
``speedup_vs_analytic`` divides its runs/s by the analytic cell's;
the analytic engine's per-run cost is pure Python and scale-independent
(its 33-user and 2000-user throughputs agree within noise), so the
canonical cell is a fair denominator for the fleet-scale cells too.
Every 33-user engine cell must reproduce the analytic cell's digest
byte-for-byte (``byte_identical_to_analytic``), which on the canonical
config is also the golden pin.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # standalone: make `repro` importable
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro._version import __version__
from repro.study import (
    ControlledStudyConfig,
    run_controlled_study,
    run_sharded_study,
)
from repro.study.engine import BATCH_RANGE_ENGINES
from repro.telemetry import Telemetry, use_telemetry


def _digest(result) -> str:
    h = hashlib.sha256()
    for run in result.runs:
        h.update((run.to_json() + "\n").encode())
    return h.hexdigest()


def bench(
    config: ControlledStudyConfig,
    shard_counts,
    repeat: int,
    telemetry_prefix: str | None = None,
) -> dict:
    entries = []
    baseline_s = None
    baseline_digest = None
    for shards in shard_counts:
        times = []
        digest = None
        runs = 0
        for _ in range(repeat):
            # With --telemetry, each timed run also records distributed
            # traces (driver span + per-shard worker spans), so a CI
            # failure can ship the spans that explain the numbers.  The
            # digest check below proves the instrumentation didn't
            # perturb the seeded study.
            if telemetry_prefix:
                stem = f"{telemetry_prefix}.shards{shards}"
                hub = Telemetry.to_path(f"{stem}.jsonl")
                with use_telemetry(hub):
                    started = time.perf_counter()
                    result = run_sharded_study(
                        config,
                        shards=shards,
                        worker_telemetry=stem if shards > 1 else None,
                    )
                    times.append(time.perf_counter() - started)
            else:
                started = time.perf_counter()
                result = run_sharded_study(config, shards=shards)
                times.append(time.perf_counter() - started)
            digest = _digest(result)
            runs = len(result.runs)
        best = min(times)
        if shards == 1:
            baseline_s, baseline_digest = best, digest
        entries.append(
            {
                "shards": shards,
                "wall_seconds_best": round(best, 4),
                "wall_seconds_all": [round(t, 4) for t in times],
                "runs": runs,
                "runs_per_second": round(runs / best, 1),
                "sha256": digest,
            }
        )
    for entry in entries:
        entry["speedup_vs_1_shard"] = (
            round(baseline_s / entry["wall_seconds_best"], 2)
            if baseline_s
            else None
        )
        entry["byte_identical_to_1_shard"] = entry["sha256"] == baseline_digest
    return {
        "benchmark": "sharded controlled study (repro.study.sharded)",
        "config": {
            "n_users": config.n_users,
            "seed": config.seed,
            "engine": config.engine,
        },
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "version": __version__,
        "repeat": repeat,
        "results": entries,
    }


def bench_engines(
    users: int,
    seed: int,
    engines,
    scale_users: int,
    repeat: int,
) -> list[dict]:
    """Engine-comparison cells: every engine at the canonical user count,
    batched-range engines additionally at fleet scale."""
    cells = []
    analytic_rps = None
    analytic_digest = None

    def one_cell(engine: str, n_users: int) -> dict:
        config = ControlledStudyConfig(
            n_users=n_users, seed=seed, engine=engine
        )
        times = []
        digest = None
        runs = 0
        for rep in range(repeat):
            started = time.perf_counter()
            result = run_controlled_study(config)
            times.append(time.perf_counter() - started)
            runs = len(result.runs)
            if rep == repeat - 1:
                # Digest once, after the timed reps: the digest is a
                # property of the (deterministic) output, not of the
                # engine's speed, and serializing millions of records
                # per rep would dwarf the thing being measured.
                digest = _digest(result)
            del result
        best = min(times)
        return {
            "engine": engine,
            "users": n_users,
            "wall_seconds_best": round(best, 4),
            "wall_seconds_all": [round(t, 4) for t in times],
            "runs": runs,
            "runs_per_second": round(runs / best, 1),
            "sha256": digest,
        }

    for engine in engines:
        cell = one_cell(engine, users)
        if engine == "analytic":
            analytic_rps = cell["runs_per_second"]
            analytic_digest = cell["sha256"]
        cells.append(cell)
    for engine in engines:
        if engine in BATCH_RANGE_ENGINES and scale_users > users:
            cells.append(one_cell(engine, scale_users))

    for cell in cells:
        if cell["users"] == users and analytic_digest is not None:
            cell["byte_identical_to_analytic"] = (
                cell["sha256"] == analytic_digest
            )
        if cell["engine"] != "analytic" and analytic_rps:
            cell["speedup_vs_analytic"] = round(
                cell["runs_per_second"] / analytic_rps, 1
            )
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=33)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--engines", nargs="+",
                        default=["analytic", "batch"],
                        help="session engines to time head-to-head at "
                             "--users (plus --scale-users for batched-"
                             "range engines); pass --engines none to "
                             "skip engine cells")
    parser.add_argument("--scale-users", type=int, default=20000,
                        help="fleet-scale population for batched-range "
                             "engine cells (default: 20000)")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_study.json"),
    )
    parser.add_argument(
        "--telemetry", default="", metavar="PREFIX",
        help="also record distributed traces: driver logs to "
             "PREFIX.shardsN.jsonl, workers to PREFIX.shardsN.shardM.jsonl "
             "(assemble with `uucs trace PREFIX*`)",
    )
    args = parser.parse_args(argv)
    config = ControlledStudyConfig(n_users=args.users, seed=args.seed)
    report = bench(
        config, args.shards, args.repeat,
        telemetry_prefix=args.telemetry or None,
    )
    engines = [e for e in args.engines if e != "none"]
    if engines:
        report["results"].extend(
            bench_engines(
                args.users, args.seed, engines, args.scale_users,
                args.repeat,
            )
        )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for entry in report["results"]:
        if "shards" in entry:
            print(
                f"shards={entry['shards']}: "
                f"{entry['wall_seconds_best']:.3f}s "
                f"({entry['speedup_vs_1_shard']}x, "
                f"identical={entry['byte_identical_to_1_shard']})"
            )
        else:
            extras = []
            if "speedup_vs_analytic" in entry:
                extras.append(f"{entry['speedup_vs_analytic']}x analytic")
            if "byte_identical_to_analytic" in entry:
                extras.append(
                    f"identical={entry['byte_identical_to_analytic']}"
                )
            print(
                f"engine={entry['engine']} users={entry['users']}: "
                f"{entry['wall_seconds_best']:.3f}s "
                f"({entry['runs_per_second']:,} runs/s"
                + (", " + ", ".join(extras) if extras else "")
                + ")"
            )
    print(f"wrote {args.out}")
    diverged = [
        e for e in report["results"]
        if not e.get("byte_identical_to_1_shard", True)
        or not e.get("byte_identical_to_analytic", True)
    ]
    if diverged:
        print("FAIL: outputs diverged across shards or engines",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
