"""Wall-clock scaling of the sharded study engine.

Times the canonical seed-2004 controlled study at several shard counts,
verifies every run produced byte-identical records, and writes the
measurements to ``BENCH_study.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_study_shards.py
    PYTHONPATH=src python benchmarks/bench_study_shards.py --shards 1 2 4 8 --repeat 3

Speedup is reported against the 1-shard (in-process) run.  The engine's
compute is embarrassingly parallel, so on an N-core host the expected
ceiling is ~N x minus pool startup and result-pickling IPC; a 1-core
host will show a slowdown for every shard count > 1, which the JSON
records honestly (see ``host.cpus``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # standalone: make `repro` importable
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro._version import __version__
from repro.study import ControlledStudyConfig, run_sharded_study
from repro.telemetry import Telemetry, use_telemetry


def _digest(result) -> str:
    h = hashlib.sha256()
    for run in result.runs:
        h.update((run.to_json() + "\n").encode())
    return h.hexdigest()


def bench(
    config: ControlledStudyConfig,
    shard_counts,
    repeat: int,
    telemetry_prefix: str | None = None,
) -> dict:
    entries = []
    baseline_s = None
    baseline_digest = None
    for shards in shard_counts:
        times = []
        digest = None
        runs = 0
        for _ in range(repeat):
            # With --telemetry, each timed run also records distributed
            # traces (driver span + per-shard worker spans), so a CI
            # failure can ship the spans that explain the numbers.  The
            # digest check below proves the instrumentation didn't
            # perturb the seeded study.
            if telemetry_prefix:
                stem = f"{telemetry_prefix}.shards{shards}"
                hub = Telemetry.to_path(f"{stem}.jsonl")
                with use_telemetry(hub):
                    started = time.perf_counter()
                    result = run_sharded_study(
                        config,
                        shards=shards,
                        worker_telemetry=stem if shards > 1 else None,
                    )
                    times.append(time.perf_counter() - started)
            else:
                started = time.perf_counter()
                result = run_sharded_study(config, shards=shards)
                times.append(time.perf_counter() - started)
            digest = _digest(result)
            runs = len(result.runs)
        best = min(times)
        if shards == 1:
            baseline_s, baseline_digest = best, digest
        entries.append(
            {
                "shards": shards,
                "wall_seconds_best": round(best, 4),
                "wall_seconds_all": [round(t, 4) for t in times],
                "runs": runs,
                "runs_per_second": round(runs / best, 1),
                "sha256": digest,
            }
        )
    for entry in entries:
        entry["speedup_vs_1_shard"] = (
            round(baseline_s / entry["wall_seconds_best"], 2)
            if baseline_s
            else None
        )
        entry["byte_identical_to_1_shard"] = entry["sha256"] == baseline_digest
    return {
        "benchmark": "sharded controlled study (repro.study.sharded)",
        "config": {
            "n_users": config.n_users,
            "seed": config.seed,
            "engine": config.engine,
        },
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "version": __version__,
        "repeat": repeat,
        "results": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=33)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_study.json"),
    )
    parser.add_argument(
        "--telemetry", default="", metavar="PREFIX",
        help="also record distributed traces: driver logs to "
             "PREFIX.shardsN.jsonl, workers to PREFIX.shardsN.shardM.jsonl "
             "(assemble with `uucs trace PREFIX*`)",
    )
    args = parser.parse_args(argv)
    config = ControlledStudyConfig(n_users=args.users, seed=args.seed)
    report = bench(
        config, args.shards, args.repeat,
        telemetry_prefix=args.telemetry or None,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for entry in report["results"]:
        print(
            f"shards={entry['shards']}: {entry['wall_seconds_best']:.3f}s "
            f"({entry['speedup_vs_1_shard']}x, "
            f"identical={entry['byte_identical_to_1_shard']})"
        )
    print(f"wrote {args.out}")
    if not all(e["byte_identical_to_1_shard"] for e in report["results"]):
        print("FAIL: shard outputs diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
