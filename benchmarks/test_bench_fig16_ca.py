"""Figure 16: c_a (mean contention at discomfort) with 95% CIs."""

import pytest

from conftest import write_artifact
from repro import paperdata
from repro.analysis.report import metric_tables
from repro.core.resources import Resource


def test_bench_fig16_ca(benchmark, study_runs, artifacts_dir):
    cells, tables = benchmark(metric_tables, study_runs)

    lines = [tables["c_a"].render(), "", "paper c_a (95% CI):"]
    for task in [*paperdata.STUDY_TASKS, "total"]:
        row = []
        for resource in (Resource.CPU, Resource.MEMORY, Resource.DISK):
            p = paperdata.cell(task, resource)
            if p.c_a is None:
                row.append("*")
            else:
                row.append(f"{p.c_a:.2f} ({p.c_a_low:.2f},{p.c_a_high:.2f})")
        lines.append(f"  {task:11s} " + "  ".join(row))
    write_artifact(artifacts_dir, "fig16_ca.txt", "\n".join(lines))

    # Starred cell reproduces.
    assert cells[("word", Resource.MEMORY)].c_a is None
    # CPU tolerance ordering across tasks (Quake lowest, Word highest).
    ca_cpu = {
        task: cells[(task, Resource.CPU)].c_a.mean
        for task in paperdata.STUDY_TASKS
    }
    assert ca_cpu["quake"] == min(ca_cpu.values())
    assert ca_cpu["word"] == max(ca_cpu.values())
    assert ca_cpu["word"] > 3.0
    assert ca_cpu["quake"] == pytest.approx(0.64, abs=0.25)
    # Resource ordering in totals: Disk > CPU > Memory (2.97 / 1.47 / 0.58).
    totals = {
        r: cells[("total", r)].c_a.mean
        for r in (Resource.CPU, Resource.MEMORY, Resource.DISK)
    }
    assert totals[Resource.DISK] > totals[Resource.CPU] > totals[Resource.MEMORY]
    # CIs bracket their means.
    for cell in cells.values():
        if cell.c_a is not None:
            assert cell.c_a.low <= cell.c_a.mean <= cell.c_a.high
