"""Shared benchmark fixtures.

Each figure benchmark times the analysis step that regenerates the figure
and writes the rendered table to ``benchmarks/artifacts/`` so the full set
of regenerated figures can be inspected (EXPERIMENTS.md links them).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.report import metric_tables
from repro.study import ControlledStudyConfig, run_controlled_study

#: Canonical study seed (same as the test suite's).
STUDY_SEED = 2004

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def controlled_study():
    return run_controlled_study(ControlledStudyConfig(seed=STUDY_SEED))


@pytest.fixture(scope="session")
def study_runs(controlled_study):
    return list(controlled_study.runs)


@pytest.fixture(scope="session")
def study_cells(study_runs):
    cells, tables = metric_tables(study_runs)
    return cells, tables


@pytest.fixture(scope="session")
def artifacts_dir():
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


def write_artifact(directory: Path, name: str, content: str) -> Path:
    path = directory / name
    path.write_text(content.rstrip() + "\n")
    return path
