"""Shared benchmark fixtures.

Each figure benchmark times the analysis step that regenerates the figure
and writes the rendered table to ``benchmarks/artifacts/`` so the full set
of regenerated figures can be inspected (EXPERIMENTS.md links them).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.report import metric_tables
from repro.study import ControlledStudyConfig, run_controlled_study

#: Canonical study seed (same as the test suite's).
STUDY_SEED = 2004

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry():
    """Instrument the whole benchmark session when UUCS_BENCH_TELEMETRY=1.

    Installs a process-wide telemetry hub writing ``bench.events.jsonl``
    and, at teardown, dumps the metrics exposition to
    ``bench.metrics.prom`` — both under ``benchmarks/artifacts/`` so CI
    can upload them (see .github/workflows/telemetry-bench.yml).
    Telemetry never perturbs seeded runs, so timings and results are
    comparable with the uninstrumented baseline.
    """
    if not os.environ.get("UUCS_BENCH_TELEMETRY"):
        yield None
        return
    from repro.telemetry import Telemetry, use_telemetry

    ARTIFACTS.mkdir(exist_ok=True)
    telemetry = Telemetry.to_path(ARTIFACTS / "bench.events.jsonl")
    with use_telemetry(telemetry):
        yield telemetry
        write_artifact(
            ARTIFACTS, "bench.metrics.prom", telemetry.metrics.render()
        )
    telemetry.close()


@pytest.fixture(scope="session")
def controlled_study():
    return run_controlled_study(ControlledStudyConfig(seed=STUDY_SEED))


@pytest.fixture(scope="session")
def study_runs(controlled_study):
    return list(controlled_study.runs)


@pytest.fixture(scope="session")
def study_cells(study_runs):
    cells, tables = metric_tables(study_runs)
    return cells, tables


@pytest.fixture(scope="session")
def artifacts_dir():
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


def write_artifact(directory: Path, name: str, content: str) -> Path:
    path = directory / name
    path.write_text(content.rstrip() + "\n")
    return path
