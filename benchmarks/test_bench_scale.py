"""Estimate convergence with population size.

§5: "Exploit our CDFs ... As we collect more data, the CDF estimates will
improve."  The vectorized engine makes populations far beyond the paper's
33 cheap, so this benchmark quantifies the improvement: bootstrap bands
for c_0.05 shrink roughly as 1/sqrt(n), and the Figure 17 skill effects
move from seed-dependent to unambiguous.
"""

import pytest

from conftest import write_artifact
from repro.analysis.bootstrap import bootstrap_c_percentile
from repro.analysis.cdf import observations_from_runs
from repro.analysis.factors import skill_level_differences
from repro.core.resources import Resource
from repro.study import ControlledStudyConfig, run_controlled_study
from repro.util.tables import TextTable

SIZES = (33, 100, 300)


def test_bench_estimate_convergence(benchmark, artifacts_dir):
    def run_all():
        out = {}
        for n in SIZES:
            config = ControlledStudyConfig(n_users=n, seed=2004)
            out[n] = list(run_controlled_study(config).runs)
        return out

    runs_by_n = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = TextTable(
        "Estimate quality vs population size (CPU aggregate)",
        ["users", "runs", "c_05 [95% band]", "band width",
         "significant fig17 cells"],
    )
    widths = {}
    for n in SIZES:
        runs = runs_by_n[n]
        observations = observations_from_runs(runs, resource=Resource.CPU)
        band = bootstrap_c_percentile(
            observations, 0.05, n_resamples=300, seed=7
        )
        widths[n] = band.high - band.low
        diffs = skill_level_differences(runs, alpha=0.01)
        table.add_row(
            n, len(runs),
            f"{band.estimate:.2f} [{band.low:.2f},{band.high:.2f}]",
            f"{widths[n]:.2f}",
            len(diffs),
        )
    write_artifact(artifacts_dir, "scale_convergence.txt", table.render())

    # Bands shrink as data grows (allowing bootstrap noise).
    assert widths[300] < widths[33]
    # The biggest study detects skill effects decisively at alpha=0.01.
    big_diffs = skill_level_differences(runs_by_n[300], alpha=0.01)
    assert len(big_diffs) >= 3
    assert any(
        d.task == "quake" and d.resource is Resource.CPU for d in big_diffs
    )
