"""Perf-regression gate over the committed benchmark reports.

Compares a freshly generated ``BENCH_study.json`` or ``BENCH_server.json``
against the committed baseline and fails (exit 1) when any matched cell
regressed beyond the tolerance::

    PYTHONPATH=src python benchmarks/bench_check.py BENCH_study.json fresh-study.json
    PYTHONPATH=src python benchmarks/bench_check.py BENCH_server.json fresh-server.json --tolerance 0.5

What counts as a regression, per cell matched by its identity key
(``shards`` for the study report; ``backend x clients`` for the server
report; ``mode`` for the dashboard report; ``policy x budget`` — plus
``shards`` for identity cells — for the scheduler report):

* a throughput metric (``runs_per_second``, ``requests_per_second``,
  ``pushes_per_second``) dropping more than ``tolerance`` below
  baseline;
* a latency metric (``p50_ms``, ``p99_ms``) rising more than
  ``tolerance`` above baseline — unless the current value is still
  under the absolute floor (``--latency-floor-ms``, default 1 ms),
  where scheduler noise swamps any real signal;
* a baseline cell missing from the current report;
* a dashboard cell's ``overhead_pct`` exceeding the current report's
  own ``max_overhead_pct`` — an absolute contract (the dashboard must
  stay effectively free for the fleet it observes), enforced on the
  current report regardless of baseline numbers;
* the study report's ``sha256`` digests disagreeing between runs or
  against the 1-shard baseline — that is a *correctness* break
  (byte-identical sharding is the engine's contract), and no tolerance
  applies;
* an engine cell whose ``byte_identical_to_analytic`` is false — the
  same correctness contract, across session engines instead of shards;
* a scheduler report where, at any matched budget, the ``cdf`` policy
  fails to harvest strictly more resource-hours than ``static`` at an
  equal-or-lower discomfort rate — the paper's §5 claim, enforced as an
  absolute contract on the current report (same fleet, same host, no
  tolerance);
* the study report's best batch-engine ``speedup_vs_analytic`` falling
  under ``--min-batch-speedup`` (default 10x) — an absolute contract on
  the current report, so the batch engine's win cannot silently rot
  even when both engines slow down together.

Cells present only in the current report are noted, never failed: the
gate guards against losing ground on what was measured before, not
against measuring more.  CI hosts differ from the hosts that produced
the committed baselines, which is why the default tolerance is a wide
30% — the gate exists to catch "this change halved throughput", not
±5% jitter.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["compare_reports", "load_report"]

#: Per-cell metrics: name -> direction ("up" = bigger is better).
_THROUGHPUT = {
    "runs_per_second": "up",
    "requests_per_second": "up",
    "pushes_per_second": "up",
    "decisions_per_second": "up",
}
_LATENCY = {"p50_ms": "down", "p99_ms": "down"}


def load_report(path: str | Path) -> dict:
    report = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(report, dict) or "results" not in report:
        raise ValueError(f"{path}: not a benchmark report (no 'results')")
    return report


def _cell_key(report: dict, cell: dict) -> str:
    """The cell's identity within its report family."""
    if "policy" in cell:  # scheduler report: Pareto or shard-identity cell
        key = f"policy={cell['policy']} budget={cell.get('budget', '?')}"
        if "shards" in cell:
            key += f" shards={cell['shards']}"
        return key
    if "engine" in cell:  # study report: session-engine comparison cell
        return f"engine={cell['engine']} users={cell['users']}"
    if "shards" in cell:
        return f"shards={cell['shards']}"
    if "mode" in cell:  # dashboard report: one cell per exporter mode
        return f"mode={cell['mode']}"
    return f"{cell.get('backend', '?')} x {cell.get('clients', '?')} clients"


def compare_reports(
    baseline: dict,
    current: dict,
    tolerance: float = 0.30,
    latency_floor_ms: float = 1.0,
    min_batch_speedup: float = 10.0,
) -> tuple[list[str], list[str]]:
    """Compare two benchmark reports cell by cell.

    Returns ``(regressions, notes)``: the gate fails iff ``regressions``
    is non-empty, while ``notes`` records benign observations (new
    cells, improvements) for the log.
    """
    regressions: list[str] = []
    notes: list[str] = []
    if baseline.get("benchmark") != current.get("benchmark"):
        regressions.append(
            f"report mismatch: baseline is {baseline.get('benchmark')!r}, "
            f"current is {current.get('benchmark')!r}"
        )
        return regressions, notes

    base_cells = {_cell_key(baseline, c): c for c in baseline["results"]}
    curr_cells = {_cell_key(current, c): c for c in current["results"]}

    for key in curr_cells:
        if key not in base_cells:
            notes.append(f"{key}: new cell (no baseline); skipped")

    # Byte-identical sharding is a correctness contract: any digest in
    # either report diverging from that report's own 1-shard digest, or
    # the two reports' digests diverging from each other, is a failure.
    # The same contract binds session engines to the analytic digest.
    for label, report in (("baseline", baseline), ("current", current)):
        for cell in report["results"]:
            if "byte_identical_to_1_shard" in cell and not cell[
                "byte_identical_to_1_shard"
            ]:
                regressions.append(
                    f"{label} {_cell_key(report, cell)}: shard output "
                    "diverged from the 1-shard run (sha256 mismatch)"
                )
            if "byte_identical_to_analytic" in cell and not cell[
                "byte_identical_to_analytic"
            ]:
                regressions.append(
                    f"{label} {_cell_key(report, cell)}: engine output "
                    "diverged from the analytic engine (sha256 mismatch)"
                )

    # The dashboard report carries its own absolute contract: no mode
    # may cost more than the report's ``max_overhead_pct`` against the
    # same run's web-off baseline.  That limit is not host-relative, so
    # it is enforced on the current report directly, independent of the
    # committed baseline's numbers.
    limit = current.get("max_overhead_pct")
    if isinstance(limit, (int, float)):
        for cell in current["results"]:
            overhead = cell.get("overhead_pct")
            if isinstance(overhead, (int, float)) and overhead > limit:
                regressions.append(
                    f"{_cell_key(current, cell)}: overhead "
                    f"{overhead:.1f}% exceeds the report's "
                    f"{limit:g}% limit"
                )

    # The scheduler report carries the paper's §5 claim as an absolute
    # contract on the current report: at every matched budget, the
    # comfort-measuring ``cdf`` policy must harvest strictly more than
    # the fixed-ceiling ``static`` strawman at an equal-or-lower
    # discomfort-event rate.  Both cells run the same seeded fleet on
    # the same host, so the comparison is host-independent and gets no
    # tolerance.
    pareto: dict[object, dict[str, dict]] = {}
    for cell in current["results"]:
        if "harvested_resource_hours" in cell and "shards" not in cell:
            pareto.setdefault(cell.get("budget"), {})[cell["policy"]] = cell
    for budget, by_policy in sorted(
        pareto.items(), key=lambda item: str(item[0])
    ):
        cdf, static = by_policy.get("cdf"), by_policy.get("static")
        if cdf is None or static is None:
            continue
        if cdf["harvested_resource_hours"] <= static["harvested_resource_hours"]:
            regressions.append(
                f"budget={budget}: cdf harvested "
                f"{cdf['harvested_resource_hours']:.1f} resource-hours, not "
                f"strictly more than static's "
                f"{static['harvested_resource_hours']:.1f}"
            )
        if cdf["discomfort_rate"] > static["discomfort_rate"]:
            regressions.append(
                f"budget={budget}: cdf discomfort rate "
                f"{cdf['discomfort_rate']:.4f} exceeds static's "
                f"{static['discomfort_rate']:.4f}"
            )
        if (
            cdf["harvested_resource_hours"] > static["harvested_resource_hours"]
            and cdf["discomfort_rate"] <= static["discomfort_rate"]
        ):
            gain = (
                cdf["harvested_resource_hours"]
                / static["harvested_resource_hours"]
                - 1.0
            )
            notes.append(
                f"budget={budget}: cdf Pareto-dominates static "
                f"(+{100 * gain:.1f}% harvest at "
                f"{cdf['discomfort_rate']:.4f} vs "
                f"{static['discomfort_rate']:.4f} discomfort rate)"
            )

    # The batch engine's reason to exist is its speedup; gate the best
    # batched-engine cell of the *current* report against an absolute
    # floor (host-independent: both engines run on the same host, so
    # the ratio survives hardware changes that absolute runs/s do not).
    batch_speedups = [
        cell["speedup_vs_analytic"]
        for cell in current["results"]
        if "speedup_vs_analytic" in cell
    ]
    if batch_speedups and min_batch_speedup > 0:
        best_speedup = max(batch_speedups)
        if best_speedup < min_batch_speedup:
            regressions.append(
                f"batch-engine speedup {best_speedup:.1f}x is under the "
                f"required {min_batch_speedup:g}x vs the analytic engine"
            )
        else:
            notes.append(
                f"batch-engine speedup: {best_speedup:.1f}x vs analytic "
                f"(floor {min_batch_speedup:g}x)"
            )

    for key, base in base_cells.items():
        curr = curr_cells.get(key)
        if curr is None:
            regressions.append(f"{key}: cell missing from current report")
            continue
        if "sha256" in base and "sha256" in curr and base["sha256"] != curr["sha256"]:
            regressions.append(
                f"{key}: study output sha256 changed "
                f"({base['sha256'][:12]}... -> {curr['sha256'][:12]}...)"
            )
        for metric in _THROUGHPUT:
            if metric not in base or metric not in curr:
                continue
            floor = base[metric] * (1.0 - tolerance)
            if curr[metric] < floor:
                regressions.append(
                    f"{key}: {metric} {curr[metric]:.1f} is "
                    f"{100 * (1 - curr[metric] / base[metric]):.1f}% below "
                    f"baseline {base[metric]:.1f} (tolerance {tolerance:.0%})"
                )
            elif curr[metric] > base[metric]:
                notes.append(
                    f"{key}: {metric} improved "
                    f"{base[metric]:.1f} -> {curr[metric]:.1f}"
                )
        for metric in _LATENCY:
            if metric not in base or metric not in curr:
                continue
            if curr[metric] <= latency_floor_ms:
                continue
            ceiling = base[metric] * (1.0 + tolerance)
            if curr[metric] > ceiling:
                regressions.append(
                    f"{key}: {metric} {curr[metric]:.3f}ms is "
                    f"{100 * (curr[metric] / base[metric] - 1):.1f}% above "
                    f"baseline {base[metric]:.3f}ms (tolerance {tolerance:.0%})"
                )
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark JSON")
    parser.add_argument("current", help="freshly generated benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--latency-floor-ms", type=float, default=1.0,
                        help="latencies at or under this are never failed "
                             "(sub-floor values are scheduler noise)")
    parser.add_argument("--min-batch-speedup", type=float, default=10.0,
                        help="required batch-vs-analytic speedup in the "
                             "current study report (0 disables)")
    args = parser.parse_args(argv)
    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    regressions, notes = compare_reports(
        baseline, current,
        tolerance=args.tolerance,
        latency_floor_ms=args.latency_floor_ms,
        min_batch_speedup=args.min_batch_speedup,
    )
    for note in notes:
        print(f"note: {note}")
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        print(
            f"{len(regressions)} regression(s) vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {len(current['results'])} cell(s) within "
        f"{args.tolerance:.0%} of {args.baseline}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
