"""Tests for the result-dataset validator."""

import dataclasses

import pytest

from repro.analysis.validate import validate_runs
from repro.core.feedback import DiscomfortEvent, RunOutcome
from repro.core.resources import Resource
from repro.core.run import RunContext, TestcaseRun


def good_run(run_id="r1"):
    return TestcaseRun(
        run_id=run_id,
        testcase_id="tc",
        context=RunContext(user_id="u", task="word"),
        outcome=RunOutcome.DISCOMFORT,
        end_offset=50.0,
        testcase_duration=120.0,
        shapes={Resource.CPU: "ramp"},
        levels_at_end={Resource.CPU: 1.0},
        last_values={Resource.CPU: (0.8, 0.9, 1.0)},
        feedback=DiscomfortEvent(offset=50.0, levels={Resource.CPU: 1.0}),
    )


def corrupted(run, **overrides):
    """Bypass constructor validation, as a hand-edited store would."""
    return dataclasses.replace(run) if not overrides else _force(run, overrides)


def _force(run, overrides):
    new = object.__new__(TestcaseRun)
    for field in dataclasses.fields(TestcaseRun):
        object.__setattr__(
            new, field.name, overrides.get(field.name, getattr(run, field.name))
        )
    return new


class TestCleanData:
    def test_clean_study_validates(self, small_study):
        report = validate_runs(small_study.runs)
        assert report.ok
        assert report.n_runs == len(small_study.runs)
        assert not report.findings

    def test_empty_dataset_warns(self):
        report = validate_runs([])
        assert report.ok  # warnings only
        assert report.warnings


class TestCorruption:
    def test_duplicate_ids(self):
        report = validate_runs([good_run("same"), good_run("same")])
        assert not report.ok
        assert any("duplicate" in str(f) for f in report.errors)

    def test_offset_out_of_bounds(self):
        bad = _force(good_run(), {"end_offset": 500.0})
        report = validate_runs([bad])
        assert not report.ok

    def test_outcome_feedback_mismatch(self):
        bad = _force(good_run(), {"feedback": None})
        report = validate_runs([bad])
        assert any("inconsistent" in str(f) for f in report.errors)

    def test_early_exhaustion(self):
        bad = _force(
            good_run(),
            {"outcome": RunOutcome.EXHAUSTED, "feedback": None,
             "end_offset": 30.0},
        )
        report = validate_runs([bad])
        assert any("ended early" in str(f) for f in report.errors)

    def test_feedback_offset_mismatch_warns(self):
        bad = _force(
            good_run(),
            {"feedback": DiscomfortEvent(offset=10.0,
                                         levels={Resource.CPU: 1.0})},
        )
        report = validate_runs([bad])
        assert report.ok  # a warning, not an error
        assert report.warnings

    def test_anonymous_user_warns(self):
        bad = _force(good_run(), {"context": RunContext(user_id="")})
        report = validate_runs([bad])
        assert report.warnings

    def test_render_mentions_counts(self):
        report = validate_runs([good_run()])
        assert "1 runs" in report.render() or "validated 1" in report.render()


class TestCliIntegration:
    def test_uucs_validate(self, tmp_path, capsys, small_study):
        from repro.cli import main
        from repro.stores import ResultStore

        store = ResultStore(tmp_path)
        store.extend(small_study.runs)
        assert main(["validate", "--results", str(tmp_path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out
