"""Tests for the synthetic user behavioral model."""

import math

import numpy as np
import pytest

from repro.core.exercise import blank, ramp, step
from repro.core.resources import Resource
from repro.core.run import RunContext
from repro.core.session import InteractivitySample, run_simulated_session
from repro.core.testcase import Testcase
from repro.errors import ValidationError
from repro.users.behavior import BehaviorParams, SimulatedUser
from repro.users.profile import SkillLevel, UserProfile
from repro.users.tolerance import ToleranceSpec, ToleranceTable

SAMPLE = InteractivitySample()


def fixed_table(mu=0.0, sigma=1e-6, p_react=1.0, ramp_bonus=0.0, task="word"):
    """A table whose word/CPU threshold is essentially exp(mu)."""
    return ToleranceTable(
        {
            (task, Resource.CPU): ToleranceSpec(
                task, Resource.CPU, p_react=p_react, mu=mu, sigma=sigma,
                ramp_bonus=ramp_bonus,
            )
        }
    )


def quiet_params(**kwargs):
    defaults = dict(noise_prob_blank={}, reaction_delay_sigma=0.0)
    defaults.update(kwargs)
    return BehaviorParams(**defaults)


def profile(**kwargs):
    defaults = dict(user_id="u", tolerance_factor=1.0, reaction_delay_mean=1.0)
    defaults.update(kwargs)
    return UserProfile(**defaults)


def run_ramp(user, x=5.0, t=100.0, task="word", rate=2.0):
    tc = Testcase.single("r", ramp(Resource.CPU, x, t, rate))
    return run_simulated_session(
        tc, user, RunContext(user_id="u", task=task)
    ).run


class TestThresholdReaction:
    def test_reacts_near_threshold_on_ramp(self):
        user = SimulatedUser(
            profile(), fixed_table(mu=math.log(2.0)), quiet_params(), seed=1
        )
        run = run_ramp(user)
        assert run.discomforted
        # Ramp of 5 over 100 s = 0.05/s; delay 1 s -> overshoot <= ~0.15.
        assert run.discomfort_level(Resource.CPU) == pytest.approx(2.0, abs=0.2)

    def test_never_reacts_when_unreactive(self):
        user = SimulatedUser(
            profile(), fixed_table(p_react=0.0), quiet_params(), seed=2
        )
        run = run_ramp(user)
        assert run.exhausted

    def test_personality_scales_threshold(self):
        stoic = SimulatedUser(
            profile(tolerance_factor=2.0), fixed_table(mu=math.log(1.5)),
            quiet_params(), seed=3,
        )
        run = run_ramp(stoic)
        assert run.discomfort_level(Resource.CPU) == pytest.approx(3.0, abs=0.2)

    def test_reaction_requires_sustained_crossing(self):
        # A sawtooth that dips below the threshold before the delay elapses
        # never triggers.
        from repro.core.exercise import sawtooth

        user = SimulatedUser(
            profile(reaction_delay_mean=4.0),
            fixed_table(mu=math.log(1.8)),
            quiet_params(),
            seed=4,
        )
        tc = Testcase.single(
            "saw", sawtooth(Resource.CPU, 2.0, 4.0, 60.0, sample_rate=2.0)
        )
        run = run_simulated_session(
            tc, user, RunContext(user_id="u", task="word")
        ).run
        # Above 1.8 only in the last ~10% of each 4 s period (< delay).
        assert run.exhausted

    def test_step_reacts_after_delay_at_plateau(self):
        user = SimulatedUser(
            profile(reaction_delay_mean=2.0),
            fixed_table(mu=math.log(1.0)),
            quiet_params(),
            seed=5,
        )
        tc = Testcase.single("s", step(Resource.CPU, 2.0, 120.0, 40.0, 2.0))
        run = run_simulated_session(
            tc, user, RunContext(user_id="u", task="word")
        ).run
        assert run.discomforted
        assert run.end_offset == pytest.approx(42.0, abs=1.0)
        assert run.discomfort_level(Resource.CPU) == 2.0


class TestFrogInPot:
    def test_ramp_tolerates_bonus_more_than_step(self):
        table = fixed_table(mu=math.log(1.5), ramp_bonus=0.5)
        user = SimulatedUser(profile(), table, quiet_params(), seed=6)
        ramp_run = run_ramp(user)
        tc = Testcase.single("s", step(Resource.CPU, 4.0, 100.0, 10.0, 2.0))
        step_threshold = user.threshold_for("word", Resource.CPU, "step")
        ramp_threshold = user.threshold_for("word", Resource.CPU, "ramp")
        assert ramp_threshold == pytest.approx(step_threshold + 0.5, abs=1e-4)
        assert ramp_run.discomfort_level(Resource.CPU) == pytest.approx(
            1.5, abs=0.2
        )


class TestSkillShifts:
    def _user(self, ratings):
        return SimulatedUser(
            profile(ratings=ratings),
            fixed_table(mu=math.log(2.0)),
            quiet_params(),
            seed=7,
        )

    def test_power_user_less_tolerant(self):
        power = self._user({"word": SkillLevel.POWER})
        typical = self._user({"word": SkillLevel.TYPICAL})
        beginner = self._user({"word": SkillLevel.BEGINNER})
        tp = power.threshold_for("word", Resource.CPU, "ramp")
        tt = typical.threshold_for("word", Resource.CPU, "ramp")
        tb = beginner.threshold_for("word", Resource.CPU, "ramp")
        assert tp < tt < tb

    def test_general_ratings_also_shift(self):
        power_pc = self._user({"pc": SkillLevel.POWER, "windows": SkillLevel.POWER})
        typical = self._user({})
        assert (
            power_pc.threshold_for("word", Resource.CPU, "ramp")
            < typical.threshold_for("word", Resource.CPU, "ramp")
        )

    def test_infinite_threshold_untouched_by_skill(self):
        user = SimulatedUser(
            profile(ratings={"word": SkillLevel.POWER}),
            fixed_table(p_react=0.0),
            quiet_params(),
            seed=8,
        )
        assert math.isinf(user.threshold_for("word", Resource.CPU, "ramp"))


class TestNoiseFloor:
    def test_blank_noise_rate(self):
        params = BehaviorParams(
            noise_prob_blank={"quake": 0.3}, reaction_delay_sigma=0.0
        )
        user = SimulatedUser(profile(), fixed_table(p_react=0.0), params, seed=9)
        tc = Testcase.single("b", blank(Resource.CPU, 120.0, 2.0))
        reactions = 0
        trials = 300
        for _ in range(trials):
            run = run_simulated_session(
                tc, user, RunContext(user_id="u", task="quake")
            ).run
            reactions += run.discomforted
        assert reactions / trials == pytest.approx(0.3, abs=0.06)

    def test_noise_events_tagged(self):
        params = BehaviorParams(
            noise_prob_blank={"quake": 1.0}, reaction_delay_sigma=0.0
        )
        user = SimulatedUser(profile(), fixed_table(p_react=0.0), params, seed=10)
        tc = Testcase.single("b", blank(Resource.CPU, 120.0, 2.0))
        run = run_simulated_session(
            tc, user, RunContext(user_id="u", task="quake")
        ).run
        assert run.discomforted
        assert run.feedback.source == "noise"

    def test_no_noise_for_word(self):
        user = SimulatedUser(
            profile(), fixed_table(p_react=0.0), BehaviorParams(), seed=11
        )
        tc = Testcase.single("b", blank(Resource.CPU, 120.0, 2.0))
        for _ in range(100):
            run = run_simulated_session(
                tc, user, RunContext(user_id="u", task="word")
            ).run
            assert run.exhausted

    def test_inrun_noise_reduced(self):
        blank_p = BehaviorParams().noise_probability("quake", 120.0, blank=True)
        inrun_p = BehaviorParams().noise_probability("quake", 120.0, blank=False)
        assert inrun_p < blank_p * 0.5


class TestParamValidation:
    def test_noise_probability_bounds(self):
        with pytest.raises(ValidationError):
            BehaviorParams(noise_prob_blank={"ie": 1.5})
        with pytest.raises(ValidationError):
            BehaviorParams(noise_inrun_factor=2.0)
        with pytest.raises(ValidationError):
            BehaviorParams(reaction_delay_sigma=-1.0)

    def test_noise_scales_with_duration(self):
        p = BehaviorParams(noise_prob_blank={"ie": 0.2})
        assert p.noise_probability("ie", 60.0, True) == pytest.approx(0.1)
        assert p.noise_probability("ie", 240.0, True) == pytest.approx(0.4)
