"""Tests for the uucs CLI toolchain."""

import pytest

from repro.cli import main


def run_cli(*args):
    return main(list(args))


class TestTestcaseTools:
    def test_gen_and_view(self, tmp_path, capsys):
        store = str(tmp_path / "tcs")
        assert run_cli("testcase-gen", "--store", store, "--shape", "ramp",
                       "--resource", "cpu", "--level", "2.0") == 0
        out = capsys.readouterr().out
        assert "ramp-cpu-2" in out
        assert run_cli("testcase-view", "ramp-cpu-2", "--store", store) == 0
        out = capsys.readouterr().out
        assert "shape=ramp" in out
        assert "max=2" in out

    def test_gen_all_shapes(self, tmp_path):
        store = str(tmp_path / "tcs")
        for shape in ("step", "ramp", "sine", "sawtooth", "constant", "blank"):
            assert run_cli("testcase-gen", "--store", store, "--shape", shape,
                           "--id", f"tc-{shape}") == 0

    def test_gen_library(self, tmp_path, capsys):
        store = str(tmp_path / "tcs")
        assert run_cli("testcase-gen", "--store", store, "--library", "12",
                       "--seed", "1") == 0
        assert "12" in capsys.readouterr().out

    def test_view_missing_errors(self, tmp_path, capsys):
        # StoreError family exits 5 (see cli._EXIT_CODES).
        assert run_cli("testcase-view", "nope",
                       "--store", str(tmp_path)) == 5
        assert "error" in capsys.readouterr().err

    def test_bad_level_reports_error(self, tmp_path, capsys):
        # ValidationError family exits 3.
        assert run_cli("testcase-gen", "--store", str(tmp_path),
                       "--shape", "constant", "--resource", "memory",
                       "--level", "5.0") == 3


class TestStudyPipeline:
    def test_study_analyze_import(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", results) == 0
        assert "128 runs" in capsys.readouterr().out
        assert run_cli("analyze", "--results", results) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Figure 14" in out
        assert "Figure 16" in out
        assert "Figure 17" in out
        db = str(tmp_path / "r.sqlite")
        assert run_cli("import-db", "--results", results,
                       "--database", db) == 0
        assert "imported 128" in capsys.readouterr().out

    def test_analyze_empty(self, tmp_path, capsys):
        assert run_cli("analyze", "--results", str(tmp_path / "empty")) == 1

    def test_study_sharded_byte_identical_store(self, tmp_path, capsys):
        single = str(tmp_path / "single")
        sharded = str(tmp_path / "sharded")
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", single) == 0
        assert "1 shard(s)" in capsys.readouterr().out
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", sharded, "--shards", "2") == 0
        out = capsys.readouterr().out
        assert "128 runs" in out
        assert "2 shard(s)" in out
        a = (tmp_path / "single" / "results.jsonl").read_bytes()
        b = (tmp_path / "sharded" / "results.jsonl").read_bytes()
        assert a == b

    def test_study_bad_shards_errors(self, tmp_path, capsys):
        # StudyError family exits 9.
        assert run_cli("study", "--users", "2", "--shards", "0",
                       "--results", str(tmp_path / "r")) == 9
        assert run_cli("study", "--users", "2", "--shards", "soon",
                       "--results", str(tmp_path / "r2")) == 9

    def test_study_shards_auto(self, tmp_path, capsys, monkeypatch):
        """`--shards auto` sizes the pool from os.cpu_count(), clamped to
        the user count (2 users here, so 2 shards regardless of cores)."""
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert run_cli("study", "--users", "2", "--seed", "9",
                       "--shards", "auto",
                       "--results", str(tmp_path / "r")) == 0
        assert "2 shard(s)" in capsys.readouterr().out

    def test_study_interrupt_then_resume_byte_identical(self, tmp_path,
                                                        capsys):
        """sigint chaos interrupts after the first shard (exit 130 with a
        resume hint); --resume finishes the study byte-identically to an
        uninterrupted run."""
        plain = str(tmp_path / "plain")
        resumed = str(tmp_path / "resumed")
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", plain) == 0
        capsys.readouterr()
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", resumed, "--shards", "2",
                       "--chaos", "sigint=1.0") == 130
        assert "--resume" in capsys.readouterr().err
        # Restarting WITHOUT --resume over the unfinished manifest is a
        # refusal (StudyError family exits 9), not silent corruption.
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", resumed, "--shards", "2") == 9
        assert "resume" in capsys.readouterr().err
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", resumed, "--shards", "2",
                       "--resume") == 0
        assert "128 runs" in capsys.readouterr().out
        a = (tmp_path / "plain" / "results.jsonl").read_bytes()
        b = (tmp_path / "resumed" / "results.jsonl").read_bytes()
        assert a == b

    def test_study_kill_chaos_retried_byte_identical(self, tmp_path,
                                                     capsys, monkeypatch):
        """Seeded worker-kill chaos (the CI chaos-shards scenario): the
        supervisor retries the killed shard and the store still matches
        the clean run byte for byte."""
        monkeypatch.setenv("UUCS_CHAOS_SEED", "42")
        plain = str(tmp_path / "plain")
        chaotic = str(tmp_path / "chaos")
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", plain) == 0
        assert run_cli("study", "--users", "4", "--seed", "9",
                       "--results", chaotic, "--shards", "2",
                       "--chaos", "kill=0.5,kill_after_runs=2",
                       "--shard-retries", "6") == 0
        assert "128 runs" in capsys.readouterr().out
        a = (tmp_path / "plain" / "results.jsonl").read_bytes()
        b = (tmp_path / "chaos" / "results.jsonl").read_bytes()
        assert a == b

    def test_study_bad_chaos_spec_errors(self, tmp_path, capsys):
        # ValidationError family exits 3.
        assert run_cli("study", "--users", "2",
                       "--results", str(tmp_path / "r"),
                       "--chaos", "explode=1.0") == 3
        assert "error" in capsys.readouterr().err


class TestTestcaseEdit:
    def test_scale_and_rename(self, tmp_path, capsys):
        store = str(tmp_path / "tcs")
        run_cli("testcase-gen", "--store", store, "--shape", "ramp",
                "--resource", "cpu", "--level", "4.0", "--id", "base")
        assert run_cli("testcase-edit", "base", "--store", store,
                       "--scale", "0.5", "--new-id", "half") == 0
        capsys.readouterr()
        run_cli("testcase-view", "half", "--store", store)
        assert "max=2" in capsys.readouterr().out

    def test_merge(self, tmp_path, capsys):
        store = str(tmp_path / "tcs")
        run_cli("testcase-gen", "--store", store, "--shape", "ramp",
                "--resource", "cpu", "--level", "1.0", "--id", "a")
        run_cli("testcase-gen", "--store", store, "--shape", "ramp",
                "--resource", "disk", "--level", "2.0", "--id", "b")
        assert run_cli("testcase-edit", "a", "--store", store,
                       "--merge", "b", "--new-id", "ab") == 0
        capsys.readouterr()
        run_cli("testcase-view", "ab", "--store", store)
        out = capsys.readouterr().out
        assert "cpu" in out and "disk" in out

    def test_crop_and_speed(self, tmp_path, capsys):
        store = str(tmp_path / "tcs")
        run_cli("testcase-gen", "--store", store, "--shape", "ramp",
                "--resource", "cpu", "--level", "2.0", "--duration", "100",
                "--id", "base")
        assert run_cli("testcase-edit", "base", "--store", store,
                       "--crop-start", "20", "--crop-end", "80",
                       "--speed", "2.0", "--new-id", "mod") == 0
        assert "30s" in capsys.readouterr().out

    def test_invalid_edit_errors(self, tmp_path, capsys):
        store = str(tmp_path / "tcs")
        run_cli("testcase-gen", "--store", store, "--shape", "ramp",
                "--resource", "cpu", "--level", "4.0", "--id", "base")
        assert run_cli("testcase-edit", "base", "--store", store,
                       "--scale", "100.0") == 3


class TestServeAndClient:
    def test_serve_briefly(self, tmp_path, capsys):
        assert run_cli("serve", "--root", str(tmp_path / "srv"),
                       "--library", "3", "--timeout", "0.2") == 0
        out = capsys.readouterr().out
        assert "UUCS server on 127.0.0.1" in out
        assert "threading backend" in out
        assert "3 testcases" in out

    def test_serve_asyncio_backend(self, tmp_path, capsys):
        assert run_cli("serve", "--root", str(tmp_path / "srv"),
                       "--backend", "asyncio", "--max-connections", "64",
                       "--library", "3", "--timeout", "0.2") == 0
        out = capsys.readouterr().out
        assert "UUCS server on 127.0.0.1" in out
        assert "asyncio backend" in out

    def test_serve_backend_env_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("UUCS_SERVER_BACKEND", "asyncio")
        assert run_cli("serve", "--root", str(tmp_path / "srv"),
                       "--timeout", "0.2") == 0
        assert "asyncio backend" in capsys.readouterr().out

    def test_serve_asyncio_with_chaos_proxy(self, tmp_path, capsys):
        assert run_cli("serve", "--root", str(tmp_path / "srv"),
                       "--backend", "asyncio", "--library", "2",
                       "--chaos", "drop=0.1", "--timeout", "0.2") == 0
        out = capsys.readouterr().out
        assert "asyncio backend" in out
        assert "chaos proxy on" in out

    def test_client_against_tcp_server(self, tmp_path, capsys):
        from repro.server import TCPServerTransport, UUCSServer
        from repro.study import generate_library

        server = UUCSServer(tmp_path / "srv", seed=1)
        server.add_testcases(generate_library(10, seed=1))
        with TCPServerTransport(server) as listener:
            _, port = listener.address
            assert run_cli(
                "client", "--port", str(port),
                "--root", str(tmp_path / "c"),
                "--duration", "2500", "--interval", "400", "--seed", "4",
            ) == 0
        out = capsys.readouterr().out
        assert "registered" in out
        assert "uploaded" in out
        assert len(server.registry) == 1

    def test_client_refused_connection(self, tmp_path, capsys):
        # ProtocolError family exits 6.
        assert run_cli("client", "--port", "1",
                       "--root", str(tmp_path / "c")) == 6


class TestExitCodes:
    def test_distinct_codes_per_error_family(self):
        from repro import errors
        from repro.cli import _EXIT_CODES, _exit_code

        codes = list(_EXIT_CODES.values())
        assert len(codes) == len(set(codes)), "exit codes must be distinct"
        assert all(c >= 2 for c in codes)
        # Subclasses not in the map fall back to their nearest ancestor.
        assert _exit_code(errors.RegistrationError("x")) == \
            _EXIT_CODES[errors.ProtocolError]
        assert _exit_code(errors.CalibrationError("x")) == \
            _EXIT_CODES[errors.ExerciserError]
        assert _exit_code(errors.InsufficientDataError("x")) == \
            _EXIT_CODES[errors.AnalysisError]
        assert _exit_code(errors.ReproError("x")) == 2


class TestTelemetryCommands:
    def test_study_writes_event_log_and_summary_renders(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        log = str(tmp_path / "events.jsonl")
        assert run_cli("study", "--users", "2", "--seed", "7",
                       "--results", results, "--telemetry", log) == 0
        out = capsys.readouterr().out
        assert "telemetry event log" in out
        assert run_cli("metrics-summary", log) == 0
        out = capsys.readouterr().out
        assert "Event counts" in out
        assert "session.run" in out
        assert "study.controlled" in out

    def test_metrics_summary_missing_file_warns_and_exits_zero(
        self, tmp_path, capsys
    ):
        assert run_cli("metrics-summary", str(tmp_path / "nope.jsonl")) == 0
        captured = capsys.readouterr()
        assert "warning: cannot read event log" in captured.err
        assert "Event counts" in captured.out

    def test_metrics_summary_empty_log(self, tmp_path, capsys):
        log = tmp_path / "empty.jsonl"
        log.write_text("")
        assert run_cli("metrics-summary", str(log)) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "Event counts" in captured.out

    def test_metrics_summary_truncated_log_skips_bad_lines(
        self, tmp_path, capsys
    ):
        log = tmp_path / "truncated.jsonl"
        log.write_text(
            '{"event": "client.run", "ts": 1.0, "fields": {}}\n'
            '{"event": "span", "ts": 2.0, "fields": {"span": "hot_sync", '
            '"duration_s": 0.5}}\n'
            '{"event": "client.ru'  # crashed writer: truncated tail
        )
        assert run_cli("metrics-summary", str(log)) == 0
        captured = capsys.readouterr()
        assert "warning: line 3: skipped" in captured.err
        assert "client.run" in captured.out
        assert "hot_sync" in captured.out

    def test_serve_with_metrics_port(self, tmp_path, capsys):
        assert run_cli("serve", "--root", str(tmp_path / "srv"),
                       "--library", "2", "--timeout", "0.2",
                       "--metrics-port", "0") == 0
        out = capsys.readouterr().out
        assert "metrics endpoint on 127.0.0.1" in out

    def test_serve_address_is_scrapable_through_a_pipe(self, tmp_path):
        """A script piping `uucs serve` must see the bound address while
        the server is still running (stdout is flushed, not block-buffered)
        and be able to scrape the ephemeral metrics port it names."""
        import os
        import subprocess
        import sys

        from repro.telemetry.aggregate import fetch_snapshot

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--root", str(tmp_path / "srv"), "--library", "1",
             "--timeout", "10", "--metrics-port", "0"],
            stdout=subprocess.PIPE, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            serve_addr = metrics_addr = None
            for line in proc.stdout:
                if line.startswith("UUCS server on "):
                    serve_addr = line.split()[3]
                elif line.startswith("metrics endpoint on "):
                    metrics_addr = line.split()[-1]
                    break
            assert serve_addr and metrics_addr, \
                "server never printed its endpoints"
            mhost, _, mport = metrics_addr.partition(":")
            assert int(mport) != 0  # the actual bound port, not the request
            # Drive a client at the served port, then scrape the fleet view.
            _, _, sport = serve_addr.partition(":")
            assert run_cli("client", "--port", sport,
                           "--root", str(tmp_path / "c"),
                           "--duration", "900", "--interval", "400") == 0
            snapshot = fetch_snapshot(mhost, int(mport))
            assert "uucs_server_clients" in snapshot.names()
            assert snapshot.series("uucs_server_clients") == {"": 1.0}
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestDashboardCLI:
    @staticmethod
    def _exporter():
        from repro.telemetry.exporter import MetricsExporter
        from repro.telemetry.metrics import MetricsRegistry

        return MetricsExporter(MetricsRegistry())

    def test_prints_summary_and_url(self, capsys):
        from repro.telemetry.aggregate import push_snapshot
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter(
            "uucs_client_runs_total", "runs", labelnames=("outcome",)
        ).inc(4, outcome="exhausted")
        with self._exporter() as exporter:
            host, port = exporter.address
            push_snapshot(host, port, "probe", registry.snapshot())
            assert run_cli("dashboard", "--port", str(port)) == 0
        out = capsys.readouterr().out
        assert f"dashboard -> http://127.0.0.1:{port}/?refresh=30" in out
        assert "fleet: 1 active" in out
        assert "Fleet" in out and "probe" in out

    def test_refresh_zero_omits_query(self, capsys):
        with self._exporter() as exporter:
            _, port = exporter.address
            assert run_cli("dashboard", "--port", str(port),
                           "--refresh", "0") == 0
        out = capsys.readouterr().out
        assert f"dashboard -> http://127.0.0.1:{port}/\n" in out

    def test_unreachable_exporter_exits_protocol(self, capsys):
        # ProtocolError family exits 6; grab a port nothing listens on.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert run_cli("dashboard", "--port", str(port)) == 6
        assert "error" in capsys.readouterr().err


class TestStudyPushGateway:
    def test_study_pushes_progress_to_gateway(self, tmp_path, capsys):
        from repro.telemetry.exporter import MetricsExporter
        from repro.telemetry.metrics import MetricsRegistry

        with MetricsExporter(MetricsRegistry()) as exporter:
            host, port = exporter.address
            assert run_cli(
                "study", "--users", "2", "--seed", "7", "--shards", "2",
                "--results", str(tmp_path / "results"),
                "--push-gateway", f"{host}:{port}",
            ) == 0
            out = capsys.readouterr().out
            assert f"pushed study metrics to {host}:{port}" in out
            fleet = exporter.fleet_view()
        (row,) = fleet["clients"]
        assert row["client_id"] == "study-seed7"
        study = fleet["study"]
        assert study is not None and study["progress_ratio"] == 1.0
        assert len(study["shards"]) == 2

    def test_unreachable_gateway_warns_but_succeeds(self, tmp_path, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert run_cli(
            "study", "--users", "2", "--seed", "7",
            "--results", str(tmp_path / "results"),
            "--push-gateway", f"127.0.0.1:{port}",
        ) == 0
        captured = capsys.readouterr()
        assert "warning: metrics push" in captured.err
        assert "controlled study: " in captured.out

    def test_bad_hostport_is_validation_error(self, tmp_path, capsys):
        assert run_cli(
            "study", "--users", "2",
            "--results", str(tmp_path / "results"),
            "--push-gateway", "no-port-here",
        ) == 3
        assert "error" in capsys.readouterr().err
