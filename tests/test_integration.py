"""Cross-module integration: the full UUCS pipeline over real transports.

Exercises the chain the paper's Figure 1-2 describe: testcases published
on a server -> clients register and hot sync over TCP -> testcases execute
against simulated machines and users -> results upload -> database import
-> analysis produces comfort metrics.
"""

import pytest

from repro.analysis import ResultDatabase, cell_metrics, metric_tables
from repro.apps import get_task
from repro.client import ClientConfig, UUCSClient
from repro.core.resources import Resource
from repro.machine import MachineSpec, SimulatedMachine
from repro.server import TCPServerTransport, UUCSServer
from repro.study.testcases import task_testcases
from repro.users import make_user, sample_population


@pytest.fixture()
def tcp_stack(tmp_path):
    server = UUCSServer(tmp_path / "server", seed=1, sync_batch=8)
    for task in ("word", "quake"):
        server.add_testcases(task_testcases(task))
    listener = TCPServerTransport(server)
    yield server, listener
    listener.close()


class TestFullPipelineOverTCP:
    def test_three_clients_end_to_end(self, tmp_path, tcp_stack):
        server, listener = tcp_stack
        population = sample_population(3, seed=5)
        machine = SimulatedMachine(MachineSpec.dell_gx270())

        for index, profile in enumerate(population):
            transport = listener.connect()
            try:
                client = UUCSClient(
                    ClientConfig(
                        root=tmp_path / f"client{index}",
                        user_id=profile.user_id,
                        sync_want=16,
                    ),
                    transport,
                    seed=100 + index,
                )
                client.register({"host": f"h{index}"})
                downloaded, _ = client.hot_sync()
                assert downloaded == 16
                user = make_user(profile, seed=200 + index)
                for task_name in ("word", "quake"):
                    task = get_task(task_name)
                    model = machine.interactivity_model(task)
                    script = [
                        tc.testcase_id for tc in task_testcases(task_name)
                    ]
                    runs = client.run_script(script, user, model, task=task_name)
                    assert len(runs) == 8
                _, uploaded = client.hot_sync()
                assert uploaded == 16
            finally:
                transport.close()

        # Server accumulated everything; analysis runs off the server store.
        all_runs = list(server.results)
        assert len(all_runs) == 3 * 16
        assert len(server.registry) == 3

        with ResultDatabase(tmp_path / "results.sqlite") as db:
            db.import_runs(all_runs)
            quake_cpu = cell_metrics(list(db.runs()), "quake", Resource.CPU)
        assert quake_cpu.cdf is not None
        assert quake_cpu.cdf.n == 3

    def test_client_reconnect_preserves_identity(self, tmp_path, tcp_stack):
        server, listener = tcp_stack
        config = ClientConfig(root=tmp_path / "c", user_id="u")
        transport = listener.connect()
        try:
            client = UUCSClient(config, transport)
            client_id = client.register({})
        finally:
            transport.close()
        transport = listener.connect()
        try:
            revived = UUCSClient(config, transport)
            assert revived.client_id == client_id
            revived.hot_sync()  # still registered server-side
        finally:
            transport.close()


class TestStudyToAnalysisCoherence:
    def test_metrics_identical_through_database(self, tmp_path, small_study):
        """Store -> DB -> analysis must not perturb any metric."""
        with ResultDatabase(tmp_path / "r.sqlite") as db:
            db.import_runs(small_study.runs)
            via_db, _ = metric_tables(list(db.runs()))
        direct, _ = metric_tables(list(small_study.runs))
        for key, cell in direct.items():
            assert via_db[key].f_d == cell.f_d
            assert via_db[key].c_05 == cell.c_05
            if cell.c_a is None:
                assert via_db[key].c_a is None
            else:
                assert via_db[key].c_a.mean == pytest.approx(cell.c_a.mean)
