"""Tests for fleet aggregation: quantiles, registry merge, rollups."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError, ValidationError
from repro.telemetry import (
    ClientRollup,
    ClientRollups,
    MetricsRegistry,
    RegistrySnapshot,
    quantile_from_buckets,
)

BOUNDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def exact_quantile(data, q):
    """Nearest-rank percentile on sorted data (no interpolation)."""
    ordered = sorted(data)
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class TestQuantileFromBuckets:
    def test_uniform_data_interpolates_exactly(self):
        # 100 evenly spaced points in (0, 1]: quantiles are exact up to
        # the in-bucket uniformity assumption, which holds here.
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=BOUNDS)
        data = [(i + 1) / 100.0 for i in range(100)]
        for v in data:
            h.observe(v)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            assert h.quantile(q) == pytest.approx(q, abs=0.1)

    def test_within_one_bucket_width_of_exact(self):
        rng_values = [((i * 37) % 97 + 1) / 97.0 for i in range(500)]
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=BOUNDS)
        for v in rng_values:
            h.observe(v)
        for q in (0.5, 0.9, 0.99):
            estimate = h.quantile(q)
            assert abs(estimate - exact_quantile(rng_values, q)) <= 0.1

    def test_empty_series_is_none(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=BOUNDS)
        assert h.quantile(0.5) is None

    def test_overflow_clamps_to_top_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        for v in (5.0, 6.0, 7.0):
            h.observe(v)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(0.99) == 2.0

    def test_q_zero_and_one(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        h.observe(3.0)
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_invalid_q_rejected(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValidationError):
            h.quantile(1.5)
        with pytest.raises(ValidationError):
            quantile_from_buckets((1.0,), (1,), 1, -0.1)

    def test_labelled_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", labelnames=("type",), buckets=(1.0, 2.0))
        h.observe(0.5, type="sync")
        assert h.quantile(0.5, type="sync") == pytest.approx(0.5)
        assert h.quantile(0.5, type="ping") is None

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=0.999), min_size=1, max_size=200
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_within_one_bucket_width(self, data, q):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=BOUNDS)
        for v in data:
            h.observe(v)
        estimate = h.quantile(q)
        assert estimate is not None
        # one bucket width on either side of the exact percentile
        assert abs(estimate - exact_quantile(data, q)) <= 0.1 + 1e-9


class TestRegistryMerge:
    def test_counter_sum(self):
        a, b, merged = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        a.counter("x_total", "X.").inc(2)
        b.counter("x_total", "X.").inc(3)
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        assert merged.counter("x_total").value() == 5

    def test_gauge_last_wins(self):
        a, b, merged = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        a.gauge("ceiling").set(0.8)
        b.gauge("ceiling").set(0.3)
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        assert merged.gauge("ceiling").value() == 0.3

    def test_histogram_bucket_add(self):
        a, b, merged = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for v in (0.05, 0.5):
            a.histogram("lat", buckets=(0.1, 1.0)).observe(v)
        b.histogram("lat", buckets=(0.1, 1.0)).observe(5.0)
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        snap = merged.histogram("lat", buckets=(0.1, 1.0)).snapshot_value()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)
        assert snap["buckets"] == {"0.1": 1, "1": 2}

    def test_labelled_series_merge(self):
        a, merged = MetricsRegistry(), MetricsRegistry()
        c = a.counter("req_total", labelnames=("type", "outcome"))
        c.inc(2, type="sync", outcome="ok")
        c.inc(1, type="register", outcome="error")
        merged.merge(a.snapshot())
        merged.merge(a.snapshot())
        out = merged.counter("req_total", labelnames=("type", "outcome"))
        assert out.value(type="sync", outcome="ok") == 4
        assert out.value(type="register", outcome="error") == 2

    def test_kind_conflict_rejected(self):
        a, merged = MetricsRegistry(), MetricsRegistry()
        a.counter("x_total").inc()
        merged.gauge("x_total").set(1)
        with pytest.raises(ValidationError):
            merged.merge(a.snapshot())

    def test_bucket_mismatch_rejected(self):
        a, merged = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        merged.histogram("lat", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValidationError):
            merged.merge(a.snapshot())

    def test_empty_histogram_skipped(self):
        a, merged = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(0.1,))
        merged.merge(a.snapshot())
        assert merged.get("lat") is None

    def test_merge_returns_metric_count(self):
        a = MetricsRegistry()
        a.counter("x_total").inc()
        a.gauge("g").set(1)
        assert MetricsRegistry().merge(a.snapshot()) == 2

    def test_merge_is_json_safe(self):
        # The snapshot survives a JSON round trip (the push wire format).
        a, merged = MetricsRegistry(), MetricsRegistry()
        a.counter("x_total", labelnames=("type",)).inc(3, type="sync")
        a.histogram("lat", buckets=(0.5, 1.0)).observe(0.7)
        wire = json.loads(json.dumps(a.snapshot()))
        merged.merge(wire)
        assert merged.counter("x_total", labelnames=("type",)).value(type="sync") == 3

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # which client observes
                # Dyadic values keep float sums exact regardless of the
                # order observations are added in, so snapshot equality
                # below is not at the mercy of FP associativity.
                st.integers(min_value=0, max_value=48).map(lambda i: i * 0.25),
            ),
            max_size=120,
        )
    )
    def test_property_merge_equals_single_observer(self, samples):
        """Merging N client snapshots == one registry seeing all samples."""
        buckets = (0.5, 1.0, 2.5, 5.0, 10.0)
        clients = [MetricsRegistry() for _ in range(4)]
        single = MetricsRegistry()
        for who, value in samples:
            for reg in (clients[who], single):
                reg.counter("runs_total", labelnames=("client",)).inc(
                    client=f"c{who}"
                )
                reg.histogram("lat", buckets=buckets).observe(value)
        merged = MetricsRegistry()
        for reg in clients:
            merged.merge(reg.snapshot())
        assert merged.snapshot() == single.snapshot()


class TestRegistrySnapshot:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("syncs_total", "S.").inc(4)
        h = reg.histogram("lat", "L.", labelnames=("type",), buckets=(0.5, 1.0))
        h.observe(0.25, type="sync")
        h.observe(0.75, type="sync")
        return reg

    def test_accessors(self):
        snap = RegistrySnapshot.of(self._registry())
        assert snap.names() == ["lat", "syncs_total"]
        assert "lat" in snap and len(snap) == 2
        assert snap.kind("lat") == "histogram"
        assert snap.series("syncs_total") == {"": 4.0}
        assert list(snap) == ["lat", "syncs_total"]

    def test_quantiles(self):
        snap = RegistrySnapshot.of(self._registry())
        q = snap.quantiles("lat", qs=(0.5,))
        assert q["sync"][0.5] == pytest.approx(0.5, abs=0.5)

    def test_quantiles_rejects_non_histograms(self):
        snap = RegistrySnapshot.of(self._registry())
        with pytest.raises(ValidationError):
            snap.quantiles("syncs_total")
        with pytest.raises(ValidationError):
            snap.quantiles("absent")

    def test_json_round_trip(self):
        snap = RegistrySnapshot.of(self._registry())
        back = RegistrySnapshot.from_json(snap.to_json())
        assert back.data == snap.data

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SerializationError):
            RegistrySnapshot.from_json("{nope")
        with pytest.raises(SerializationError):
            RegistrySnapshot.from_json("[1, 2]")


class TestClientRollups:
    def test_lifecycle(self):
        rollups = ClientRollups()
        rollups.record_register("abc", now=1.0)
        rollups.record_sync("abc", results=3, discomforts=1, now=5.0)
        rollups.record_sync("abc", results=0, discomforts=0, now=9.0)
        rollups.record_bytes("abc", read=100, written=900)
        rollups.record_push("abc", now=11.0)
        row = rollups.get("abc")
        assert row == ClientRollup(
            client_id="abc",
            registered_at=1.0,
            syncs=2,
            results=3,
            discomforts=1,
            bytes_read=100,
            bytes_written=900,
            pushes=1,
            last_seen=11.0,
        )

    def test_rows_sorted_by_guid(self):
        rollups = ClientRollups()
        rollups.record_sync("zzz")
        rollups.record_sync("aaa")
        assert [r.client_id for r in rollups.rows()] == ["aaa", "zzz"]
        assert len(rollups) == 2
        assert "aaa" in rollups and "missing" not in rollups
        assert rollups.get("missing") is None

    def test_dict_round_trip(self):
        rollups = ClientRollups()
        rollups.record_sync("abc", results=2, discomforts=1, now=3.0)
        (data,) = rollups.as_dicts()
        assert ClientRollup.from_dict(data) == rollups.get("abc")

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(SerializationError):
            ClientRollup.from_dict({})
        with pytest.raises(SerializationError):
            ClientRollup.from_dict({"client_id": "x", "syncs": "many"})
