"""Failure injection: the client must survive flaky transports without
losing results (the disconnected-operation property of §2)."""

import pytest

from repro.client import ClientConfig, UUCSClient
from repro.errors import ProtocolError
from repro.server import InProcessTransport, Message, UUCSServer
from repro.study.testcases import task_testcases
from repro.users import make_user, sample_population


class FlakyTransport:
    """Fails the first ``failures`` requests, then delegates."""

    def __init__(self, inner, failures=1):
        self._inner = inner
        self._remaining = failures
        self.requests = 0

    def request(self, message):
        self.requests += 1
        if self._remaining > 0:
            self._remaining -= 1
            raise ProtocolError("simulated network failure")
        return self._inner.request(message)


class LyingServerTransport:
    """Returns responses that violate the protocol contract."""

    def __init__(self, responses):
        self._responses = list(responses)

    def request(self, message):
        return self._responses.pop(0)


@pytest.fixture()
def server(tmp_path):
    server = UUCSServer(tmp_path / "server", seed=1)
    server.add_testcases(task_testcases("word"))
    return server


@pytest.fixture()
def feedback():
    return make_user(sample_population(1, seed=2)[0], seed=3)


class TestTransportFailures:
    def test_failed_sync_keeps_local_results(self, tmp_path, server, feedback):
        good = InProcessTransport(server)
        client = UUCSClient(
            ClientConfig(root=tmp_path / "c", user_id="u"), good, seed=1
        )
        client.register({})
        client.hot_sync()
        client.run_script(["word-blank-1"], feedback, task="word")
        assert len(client.results) == 1

        flaky = UUCSClient(
            ClientConfig(root=tmp_path / "c", user_id="u"),
            FlakyTransport(good, failures=1),
            seed=1,
        )
        with pytest.raises(ProtocolError):
            flaky.hot_sync()
        # The local store still holds the run; the next sync delivers it.
        assert len(flaky.results) == 1
        _, uploaded = flaky.hot_sync()
        assert uploaded == 1
        assert len(server.results) == 1

    def test_failed_registration_leaves_no_identity(self, tmp_path, server):
        flaky = UUCSClient(
            ClientConfig(root=tmp_path / "c2", user_id="u"),
            FlakyTransport(InProcessTransport(server), failures=1),
        )
        with pytest.raises(ProtocolError):
            flaky.register({})
        assert not flaky.registered
        # Recovery: the retry succeeds and persists.
        client_id = flaky.register({})
        assert flaky.registered
        revived = UUCSClient(
            ClientConfig(root=tmp_path / "c2", user_id="u"),
            InProcessTransport(server),
        )
        assert revived.client_id == client_id


class TestProtocolViolations:
    def test_registration_without_client_id(self, tmp_path):
        lying = LyingServerTransport([Message("registered", {})])
        client = UUCSClient(
            ClientConfig(root=tmp_path / "c", user_id="u"), lying
        )
        with pytest.raises(ProtocolError):
            client.register({})
        assert not client.registered

    def test_sync_with_partial_acceptance_keeps_results(
        self, tmp_path, server, feedback
    ):
        """A v1-style short acceptance is reconciled, not fatal: the client
        keeps its queue (no poison pill, no drain) and carries on."""
        good = InProcessTransport(server)
        client = UUCSClient(
            ClientConfig(root=tmp_path / "c", user_id="u"), good, seed=1
        )
        client.register({})
        client.hot_sync()
        client.run_script(["word-blank-1"], feedback, task="word")
        lying = LyingServerTransport(
            [Message("sync_ok", {"testcases": [], "accepted": 0})]
        )
        client._transport = lying  # inject the misbehaving server
        downloaded, uploaded = client.hot_sync()  # must not raise
        assert uploaded == 0
        # Results were NOT drained on a bad acknowledgement...
        assert len(client.results) == 1
        # ...and the very next sync against the real server delivers them
        # exactly once (the v2 server dedupes any that did land).
        client._transport = good
        _, uploaded = client.hot_sync()
        assert uploaded == 1
        assert len(client.results) == 0
        assert len(server.results) == 1

    def test_error_response_surfaced(self, tmp_path):
        lying = LyingServerTransport([Message.error("database on fire")])
        client = UUCSClient(
            ClientConfig(root=tmp_path / "c", user_id="u"), lying
        )
        with pytest.raises(ProtocolError, match="database on fire"):
            client.register({})

    def test_malformed_testcase_download_rejected(
        self, tmp_path, server
    ):
        good = InProcessTransport(server)
        client = UUCSClient(
            ClientConfig(root=tmp_path / "c", user_id="u"), good, seed=1
        )
        client.register({})
        lying = LyingServerTransport(
            [Message("sync_ok", {"testcases": ["garbage"], "accepted": 0})]
        )
        client._transport = lying
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            client.hot_sync()
        # The store was not polluted with a partial testcase.
        assert len(client.testcases) == 0
