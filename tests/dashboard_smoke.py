#!/usr/bin/env python
"""Headless smoke test for the fleet web dashboard (CI gate).

Boots a real :class:`MetricsExporter`, pushes two synthetic client
snapshots through the push gateway, then exercises the public surface
exactly as a browser would:

* ``GET /`` must serve the self-contained HTML page;
* ``GET /fleet`` must validate against the checked-in wire contract
  ``tests/schemas/fleet.schema.json``;
* ``GET /history`` must return the ring-buffer series for both clients;
* ``GET /stream`` must deliver the ``hello`` frame and one live ``push``
  frame (triggered by a third snapshot) over SSE.

Stdlib only — the schema check is a deliberately small validator
covering the subset the schema file uses (type, required, properties,
items, minimum, enum), not a jsonschema dependency.

Run directly (``python tests/dashboard_smoke.py``) or via pytest
(``tests/test_web_dashboard.py::test_dashboard_smoke``). Exit 0 on
success, 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import json
import socket
import sys
import urllib.request
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

SCHEMA_PATH = Path(__file__).resolve().parent / "schemas" / "fleet.schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
    "null": type(None),
}


def validate(instance, schema, path="$"):
    """Check ``instance`` against the mini JSON-schema subset; returns a
    list of error strings (empty = valid)."""
    errors = []
    allowed = schema.get("type")
    if allowed is not None:
        names = [allowed] if isinstance(allowed, str) else list(allowed)
        ok = False
        for name in names:
            python_type = _TYPES[name]
            if isinstance(instance, python_type) and not (
                name in ("integer", "number") and isinstance(instance, bool)
            ):
                ok = True
                break
        if not ok:
            return [f"{path}: expected {'|'.join(names)}, "
                    f"got {type(instance).__name__}"]
        if instance is None:
            return []  # a nullable slot that is null needs no more checks
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        minimum = schema.get("minimum")
        if minimum is not None and instance < minimum:
            errors.append(f"{path}: {instance} < minimum {minimum}")
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(validate(instance[key], subschema, f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


def synthetic_registry(runs, levels, borrow, sched=None):
    """A client-shaped registry: run counter, borrow gauge, discomfort CDF.

    ``sched=(harvested_s, denials, ceiling)`` additionally populates the
    harvesting-scheduler metric families a ``uucs harvest`` run pushes.
    """
    from repro.core.session import DISCOMFORT_LEVEL_BUCKETS
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    counter = registry.counter(
        "uucs_client_runs_total", "runs", labelnames=("outcome",)
    )
    counter.inc(runs - len(levels), outcome="exhausted")
    if levels:
        counter.inc(len(levels), outcome="discomfort")
    registry.gauge("uucs_throttle_ceiling", "borrow").set(borrow)
    histogram = registry.histogram(
        "uucs_discomfort_level",
        "levels",
        labelnames=("task", "resource"),
        buckets=DISCOMFORT_LEVEL_BUCKETS,
    )
    for level in levels:
        histogram.observe(level, task="word", resource="cpu")
    if sched is not None:
        harvested_s, denials, ceiling = sched
        registry.counter(
            "uucs_sched_harvested_resource_seconds_total",
            "harvested",
            labelnames=("task", "resource"),
        ).inc(harvested_s, task="word", resource="cpu")
        registry.counter(
            "uucs_sched_admission_denials_total",
            "denials",
            labelnames=("task", "resource"),
        ).inc(denials, task="word", resource="cpu")
        registry.gauge(
            "uucs_sched_ceiling",
            "ceiling",
            labelnames=("task", "resource"),
        ).set(ceiling, task="word", resource="cpu")
    return registry


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


def check(condition, message):
    if not condition:
        raise AssertionError(message)


def read_sse_frame(sock, buffer, want_event):
    """Read from ``sock`` until a non-comment frame of ``want_event``
    arrives; returns (fields, remaining_buffer)."""
    sock.settimeout(10)
    while True:
        while b"\n\n" in buffer:
            frame, buffer = buffer.split(b"\n\n", 1)
            if frame.startswith(b":"):
                continue
            fields = {}
            for line in frame.split(b"\n"):
                name, _, value = line.partition(b": ")
                fields[name.decode()] = value.decode()
            if fields.get("event") == want_event:
                fields["data"] = json.loads(fields["data"])
                return fields, buffer
        chunk = sock.recv(65536)
        check(chunk, f"stream closed before a {want_event!r} frame")
        buffer += chunk


def main():
    from repro.telemetry.aggregate import push_snapshot
    from repro.telemetry.exporter import MetricsExporter
    from repro.telemetry.metrics import MetricsRegistry

    schema = json.loads(SCHEMA_PATH.read_text())
    with MetricsExporter(MetricsRegistry()) as exporter:
        host, port = exporter.address
        base = f"http://{host}:{port}"

        # Two synthetic clients: a harvesting scheduler and a plain client.
        push_snapshot(host, port, "smoke-a",
                      synthetic_registry(20, [0.5, 0.9], 0.30,
                                         sched=(432.5, 3, 1.25)).snapshot())
        push_snapshot(host, port, "smoke-b",
                      synthetic_registry(12, [0.15], 0.10).snapshot())

        status, headers, body = fetch(base + "/")
        check(status == 200, f"GET / -> {status}")
        check(headers.get("Content-Type") == "text/html; charset=utf-8",
              f"GET / content-type {headers.get('Content-Type')!r}")
        check(body.startswith(b"<!DOCTYPE html"), "GET / is not the HTML page")
        check(b"EventSource" in body, "page lost its SSE client")
        print(f"ok GET /        {len(body)} bytes of HTML")

        status, headers, body = fetch(base + "/fleet")
        check(status == 200, f"GET /fleet -> {status}")
        check(headers.get("Content-Type") == "application/json; charset=utf-8",
              f"GET /fleet content-type {headers.get('Content-Type')!r}")
        fleet = json.loads(body)
        schema_errors = validate(fleet, schema)
        check(not schema_errors,
              "fleet schema violations:\n  " + "\n  ".join(schema_errors))
        check(len(fleet["clients"]) == 2, "expected 2 fleet rows")
        check(fleet["totals"]["active"] == 2, "both clients should be fresh")
        check(all(row["min_headroom"] is not None for row in fleet["clients"]),
              "comfort headroom missing from a pushed client")
        rows = {row["client_id"]: row for row in fleet["clients"]}
        check(rows["smoke-a"]["sched_harvested_s"] == 432.5,
              f"sched_harvested_s {rows['smoke-a']['sched_harvested_s']!r}")
        check(rows["smoke-a"]["sched_denials"] == 3.0,
              f"sched_denials {rows['smoke-a']['sched_denials']!r}")
        check(rows["smoke-a"]["sched_ceiling"] == 1.25,
              f"sched_ceiling {rows['smoke-a']['sched_ceiling']!r}")
        check(rows["smoke-b"]["sched_harvested_s"] is None,
              "non-scheduler client grew scheduler columns")
        check(len(fleet["events"]) == 2, "expected one feed event per client")
        print(f"ok GET /fleet   schema valid, {len(fleet['clients'])} rows")

        status, headers, body = fetch(base + "/history")
        check(status == 200, f"GET /history -> {status}")
        history = json.loads(body)
        check(set(history["clients"]) == {"smoke-a", "smoke-b"},
              f"history clients {sorted(history['clients'])}")
        for client_id, series in history["clients"].items():
            check(len(series["runs"]) == 1,
                  f"{client_id}: expected 1 history point")
        print(f"ok GET /history capacity {history['capacity']}")

        with socket.create_connection((host, port), timeout=10) as stream:
            stream.sendall(b"GET /stream HTTP/1.0\r\n\r\n")
            buffer = b""
            while b"\r\n\r\n" not in buffer:
                buffer += stream.recv(65536)
            head, _, buffer = buffer.partition(b"\r\n\r\n")
            check(b"text/event-stream" in head, "stream content-type wrong")
            hello, buffer = read_sse_frame(stream, buffer, "hello")
            check(len(hello["data"]["clients"]) == 2, "hello missed a client")
            # A third push must arrive as a live SSE frame, no polling.
            push_snapshot(host, port, "smoke-a",
                          synthetic_registry(25, [0.5, 0.9, 1.2], 0.35).snapshot())
            push, buffer = read_sse_frame(stream, buffer, "push")
            check(push["data"]["client_id"] == "smoke-a", "push wrong client")
            check(push["data"]["row"]["runs"] == 25.0, "push row stale")
            check(int(push["id"]) == push["data"]["version"],
                  "SSE id and payload version diverged")
            # A scheduler push grows no discomfort histogram, but must
            # still carry a full row so the sched columns update live.
            push_snapshot(host, port, "smoke-a",
                          synthetic_registry(25, [0.5, 0.9, 1.2], 0.35,
                                             sched=(500.0, 4, 1.5)).snapshot())
            sched_push, _ = read_sse_frame(stream, buffer, "push")
            check(sched_push["data"]["client_id"] == "smoke-a",
                  "scheduler push wrong client")
            row = sched_push["data"].get("row")
            check(row is not None, "scheduler push sent a light delta")
            check(row["sched_harvested_s"] == 500.0,
                  f"scheduler row stale: {row.get('sched_harvested_s')!r}")
        print("ok GET /stream  hello + live push + scheduler row frames")

    print("dashboard smoke OK")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as exc:
        print(f"dashboard smoke FAILED: {exc}", file=sys.stderr)
        sys.exit(1)
