"""Tests for the network exerciser (built but unstudied, matching §2.2)."""

import time

import pytest

from repro.core.resources import Resource
from repro.errors import ExerciserError, ValidationError
from repro.exercisers import NetworkExerciser


class TestLifecycle:
    def test_udp_variant_sends(self):
        with NetworkExerciser(link_capacity_bps=2_000_000,
                              subinterval=0.02) as net:
            net.set_level(0.5)
            time.sleep(0.25)
            assert net.bytes_sent > 0
            assert net.datagrams > 0
        assert not net.running

    def test_tcp_variant_sends(self):
        with NetworkExerciser(variant="tcp", link_capacity_bps=2_000_000,
                              subinterval=0.02) as net:
            net.set_level(0.5)
            time.sleep(0.25)
            assert net.bytes_sent > 0

    def test_zero_level_sends_nothing(self):
        with NetworkExerciser(link_capacity_bps=1_000_000,
                              subinterval=0.02) as net:
            time.sleep(0.1)
            assert net.bytes_sent == 0

    def test_rate_tracks_level(self):
        capacity = 4_000_000.0
        with NetworkExerciser(link_capacity_bps=capacity,
                              subinterval=0.02) as net:
            net.set_level(0.5)
            time.sleep(0.4)
            sent = net.bytes_sent
        # Token bucket: ~level * capacity/8 bytes per second, generous
        # bounds for scheduling noise.
        expected = 0.5 * capacity / 8.0 * 0.4
        assert sent == pytest.approx(expected, rel=0.6)

    def test_double_start_rejected(self):
        net = NetworkExerciser(link_capacity_bps=1_000_000)
        net.start()
        try:
            with pytest.raises(ExerciserError):
                net.start()
        finally:
            net.stop()
        net.stop()  # idempotent


class TestValidation:
    def test_level_envelope(self):
        net = NetworkExerciser(link_capacity_bps=1_000_000)
        with pytest.raises(ValidationError):
            net.set_level(1.5)
        with pytest.raises(ValidationError):
            net.set_level(-0.1)

    def test_params(self):
        with pytest.raises(ExerciserError):
            NetworkExerciser(link_capacity_bps=0.0)
        with pytest.raises(ExerciserError):
            NetworkExerciser(variant="carrier-pigeon")
        with pytest.raises(ExerciserError):
            NetworkExerciser(subinterval=0.0)

    def test_resource_tag(self):
        assert NetworkExerciser.resource is Resource.NETWORK


class TestStudiesExcludeNetwork:
    def test_controlled_study_never_exercises_network(self, small_study):
        """The paper excluded network borrowing from its studies; so do we."""
        for run in small_study.runs:
            assert Resource.NETWORK not in run.shapes

    def test_internet_library_excludes_network(self):
        from repro.study import generate_library

        for testcase in generate_library(50, seed=1):
            assert Resource.NETWORK not in testcase.functions
