"""Tests for borrowing strategies and the activity model."""

import pytest

from repro.apps import get_task
from repro.errors import ValidationError
from repro.machine import SimulatedMachine
from repro.throttle import (
    ActivityModel,
    BackgroundBorrower,
    Throttle,
    aggressive,
    cdf_operating_point,
    linger_longer,
    screensaver,
)
from repro.core.resources import Resource
from repro.users import make_user, sample_population


class TestActivityModel:
    def test_schedule_covers_horizon(self):
        model = ActivityModel(mean_active=100.0, mean_idle=50.0)
        spans = model.schedule(1000.0, seed=1)
        assert spans[0][0] == 0.0
        assert spans[-1][1] == pytest.approx(1000.0)
        for (s1, e1, a1), (s2, e2, a2) in zip(spans, spans[1:]):
            assert e1 == s2
            assert a1 != a2  # strict alternation

    def test_active_fraction(self):
        model = ActivityModel(mean_active=300.0, mean_idle=100.0)
        assert model.active_fraction == pytest.approx(0.75)
        spans = model.schedule(500_000.0, seed=2)
        active_time = sum(e - s for s, e, a in spans if a)
        assert active_time / 500_000.0 == pytest.approx(0.75, abs=0.05)

    def test_active_at(self):
        model = ActivityModel(mean_active=100.0, mean_idle=100.0)
        spans = [(0.0, 10.0, True), (10.0, 20.0, False)]
        assert model.active_at(spans, 5.0)
        assert not model.active_at(spans, 15.0)

    def test_deterministic(self):
        model = ActivityModel()
        assert model.schedule(3600.0, seed=7) == model.schedule(3600.0, seed=7)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ActivityModel(mean_active=0.0)
        with pytest.raises(ValidationError):
            ActivityModel().schedule(-1.0)


class TestPolicies:
    def test_screensaver(self):
        policy = screensaver(burst_level=6.0)
        assert policy(True) == 0.0
        assert policy(False) == 6.0

    def test_linger_longer(self):
        policy = linger_longer(0.3, burst_level=6.0)
        assert policy(True) == 0.3
        assert policy(False) == 6.0
        with pytest.raises(ValidationError):
            linger_longer(-0.1)

    def test_cdf_operating_point(self):
        policy = cdf_operating_point(0.35)
        assert policy(True) == policy(False) == 0.35
        with pytest.raises(ValidationError):
            cdf_operating_point(-1.0)

    def test_aggressive(self):
        policy = aggressive(8.0)
        assert policy(True) == 8.0


class TestBorrowerWithActivity:
    def _borrower(self, seed=41):
        machine = SimulatedMachine()
        user = make_user(sample_population(1, seed=13)[0], seed=seed)
        throttle = Throttle(Resource.CPU, 8.0)
        return BackgroundBorrower(machine, get_task("powerpoint"), user, throttle)

    def test_screensaver_never_discomforts(self):
        borrower = self._borrower()
        report = borrower.run(
            work=5000.0,
            horizon=8 * 3600.0,
            request=screensaver(8.0),
            activity=ActivityModel(mean_active=1200.0, mean_idle=600.0),
            activity_seed=3,
        )
        assert report.discomfort_events == 0
        assert report.work_done > 0  # idle periods were harvested

    def test_linger_longer_beats_screensaver(self):
        activity = ActivityModel(mean_active=1200.0, mean_idle=600.0)
        saver = self._borrower(seed=41).run(
            work=1e9, horizon=4 * 3600.0, request=screensaver(8.0),
            activity=activity, activity_seed=5,
        )
        linger = self._borrower(seed=41).run(
            work=1e9, horizon=4 * 3600.0, request=linger_longer(0.3, 8.0),
            activity=activity, activity_seed=5,
        )
        assert linger.work_done > saver.work_done

    def test_idle_user_cannot_click(self):
        # All-idle schedule: full-bore borrowing, zero discomfort.
        borrower = self._borrower()
        report = borrower.run(
            work=1e9, horizon=3600.0, request=aggressive(8.0),
            activity=ActivityModel(mean_active=1e-3, mean_idle=1e9),
            activity_seed=1,
        )
        assert report.discomfort_events == 0
        assert report.work_done == pytest.approx(3600.0, rel=0.02)

    def test_activity_schedule_deterministic_run(self):
        activity = ActivityModel()
        a = self._borrower(seed=9).run(
            work=500.0, horizon=7200.0, request=linger_longer(0.2),
            activity=activity, activity_seed=11,
        )
        b = self._borrower(seed=9).run(
            work=500.0, horizon=7200.0, request=linger_longer(0.2),
            activity=activity, activity_seed=11,
        )
        assert a == b
