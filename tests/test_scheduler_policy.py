"""Unit tests for the harvesting-scheduler policies."""

import pytest

from repro.core.resources import CONTENTION_LIMITS, Resource
from repro.errors import SchedulerError
from repro.paperdata import RAMP_PARAMS
from repro.scheduler import (
    SCHEDULER_POLICIES,
    AIMDPolicy,
    CDFPolicy,
    SchedulerDecision,
    StaticPolicy,
    build_policy,
    cell_cap,
)


class TestRegistry:
    def test_all_three_policies_registered(self):
        assert set(SCHEDULER_POLICIES) == {"static", "aimd", "cdf"}

    def test_build_policy_dispatches(self):
        assert isinstance(build_policy("static"), StaticPolicy)
        assert isinstance(build_policy("aimd"), AIMDPolicy)
        assert isinstance(build_policy("cdf"), CDFPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulerError, match="unknown scheduler policy"):
            build_policy("greedy")

    @pytest.mark.parametrize("budget", [0.0, 1.0, -0.1, 2.0])
    def test_bad_budget_rejected(self, budget):
        with pytest.raises(SchedulerError, match="budget"):
            build_policy("cdf", budget=budget)

    def test_budget_reaches_cdf_policy(self):
        assert build_policy("cdf", budget=0.1).budget == 0.1


class TestCellCap:
    def test_studied_cell_uses_ramp_maximum(self):
        task, resource = "word", Resource.CPU
        ramp_max = RAMP_PARAMS[(task, resource)][0]
        assert cell_cap(task, resource) == min(
            ramp_max, CONTENTION_LIMITS[resource]
        )

    def test_unstudied_cell_falls_back_to_contention_limit(self):
        assert cell_cap("no-such-task", Resource.NETWORK) == (
            CONTENTION_LIMITS[Resource.NETWORK]
        )


class TestStaticPolicy:
    def test_fixed_fraction_of_cap_always_admitted(self):
        policy = StaticPolicy(fraction=0.5)
        for _ in range(3):
            decision = policy.decide("word", Resource.CPU)
            assert decision == SchedulerDecision(
                True, 0.5 * cell_cap("word", Resource.CPU)
            )

    def test_feedback_is_ignored(self):
        policy = StaticPolicy(fraction=0.25)
        before = policy.decide("quake", Resource.DISK).ceiling
        policy.on_discomfort("quake", Resource.DISK, before)
        policy.on_comfortable("quake", Resource.DISK, 600.0)
        assert policy.decide("quake", Resource.DISK).ceiling == before

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_bad_fraction_rejected(self, fraction):
        with pytest.raises(SchedulerError):
            StaticPolicy(fraction=fraction)


class TestAIMDPolicy:
    def test_starts_at_cap_and_always_admits(self):
        policy = AIMDPolicy()
        decision = policy.decide("word", Resource.CPU)
        assert decision.admitted
        assert decision.ceiling == cell_cap("word", Resource.CPU)

    def test_discomfort_backs_off_and_comfort_recovers(self):
        policy = AIMDPolicy(backoff=0.5, recovery_fraction=0.05)
        cap = cell_cap("word", Resource.CPU)
        policy.on_discomfort("word", Resource.CPU, cap)
        halved = policy.decide("word", Resource.CPU).ceiling
        assert halved == pytest.approx(0.5 * cap)
        policy.on_comfortable("word", Resource.CPU, 60.0)
        recovered = policy.decide("word", Resource.CPU).ceiling
        assert recovered == pytest.approx(halved + 0.05 * cap)

    def test_cells_are_independent(self):
        policy = AIMDPolicy()
        policy.on_discomfort("word", Resource.CPU, 1.0)
        assert policy.decide("word", Resource.DISK).ceiling == cell_cap(
            "word", Resource.DISK
        )


class TestCDFPolicy:
    CELL = ("word", Resource.CPU)

    def test_starts_at_start_fraction(self):
        policy = CDFPolicy(start_fraction=0.1)
        cap = cell_cap(*self.CELL)
        assert policy.decide(*self.CELL).ceiling == pytest.approx(0.1 * cap)

    def test_climbs_while_comfortable_capped_at_cell_cap(self):
        policy = CDFPolicy(start_fraction=0.1, climb_fraction=0.3)
        cap = cell_cap(*self.CELL)
        before = policy.decide(*self.CELL).ceiling
        policy.on_comfortable(*self.CELL, 60.0)
        after = policy.decide(*self.CELL).ceiling
        assert after == pytest.approx(before + 0.3 * cap)
        for _ in range(1000):
            policy.on_comfortable(*self.CELL, 60.0)
        assert policy.decide(*self.CELL).ceiling == cap

    def test_discomfort_strictly_decreases_ceiling(self):
        policy = CDFPolicy()
        cap = cell_cap(*self.CELL)
        floor = policy._floor * cap
        for _ in range(20):
            before = policy.decide(*self.CELL).ceiling
            policy.on_discomfort(*self.CELL, before)
            after = policy.decide(*self.CELL).ceiling
            if before > floor:
                assert after < before
            else:
                assert after == floor

    def test_backoff_tracks_measured_c_a(self):
        """After enough observations the ceiling re-seats below
        ``safety * c_a`` of the policy's own histogram."""
        policy = CDFPolicy(budget=0.1, safety=0.75)
        cap = cell_cap(*self.CELL)
        for level in (0.6 * cap, 0.5 * cap, 0.7 * cap, 0.4 * cap):
            policy.on_discomfort(*self.CELL, level)
        cell = self.CELL
        c_a = policy._c_a_for(cell)
        assert c_a is not None
        assert policy.decide(*cell).ceiling <= 0.75 * c_a

    def test_admission_denied_over_budget_then_amortizes(self):
        policy = CDFPolicy(budget=0.5, min_observations=2)
        # Two decisions, two discomforts: rate 1.0 > budget 0.5.
        for _ in range(2):
            decision = policy.decide(*self.CELL)
            assert decision.admitted
            policy.on_discomfort(*self.CELL, decision.ceiling)
        assert not policy.decide(*self.CELL).admitted
        # Denied epochs still count as decisions, so the realized rate
        # decays back to the budget and admission resumes: after the
        # 3rd denial, 2 discomforts / 4 decisions == budget.
        assert not policy.decide(*self.CELL).admitted
        assert policy.decide(*self.CELL).admitted

    def test_deterministic_replay(self):
        """Identical event sequences yield identical decision streams."""
        def drive(policy):
            out = []
            for i in range(40):
                decision = policy.decide(*self.CELL)
                out.append((decision.admitted, decision.ceiling))
                if not decision.admitted:
                    continue
                if i % 5 == 0:
                    policy.on_discomfort(*self.CELL, decision.ceiling)
                else:
                    policy.on_comfortable(*self.CELL, 60.0)
            return out

        assert drive(CDFPolicy()) == drive(CDFPolicy())

    def test_bad_tunables_rejected(self):
        for kwargs in (
            {"budget": 0.0},
            {"backoff": 1.0},
            {"soft_backoff": 0.0},
            {"safety": 1.5},
            {"start_fraction": 0.0},
            {"climb_fraction": 0.0},
            {"floor_fraction": 1.0},
            {"min_observations": 0},
        ):
            with pytest.raises(SchedulerError):
                CDFPolicy(**kwargs)
