"""Tests for the UUCS wire protocol."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.server.protocol import Message, decode_message, encode_message


class TestMessage:
    def test_known_types_only(self):
        Message("register", {})
        Message("sync_ok", {})
        with pytest.raises(ProtocolError):
            Message("gossip", {})

    def test_request_classification(self):
        assert Message("sync", {}).is_request
        assert not Message("sync_ok", {}).is_request

    def test_expect_passes_matching(self):
        msg = Message("registered", {"client_id": "x"})
        assert msg.expect("registered") is msg

    def test_expect_raises_on_mismatch(self):
        with pytest.raises(ProtocolError):
            Message("pong", {}).expect("registered")

    def test_expect_surfaces_server_error(self):
        with pytest.raises(ProtocolError, match="boom"):
            Message.error("boom").expect("sync_ok")


class TestCodec:
    def test_roundtrip(self):
        msg = Message("sync", {"client_id": "c", "have": ["a"], "want": 3})
        restored = decode_message(encode_message(msg))
        assert restored.type == "sync"
        assert restored.payload == dict(msg.payload)

    def test_newline_terminated(self):
        assert encode_message(Message("ping", {})).endswith(b"\n")

    def test_decode_str_or_bytes(self):
        line = encode_message(Message("pong", {}))
        assert decode_message(line).type == "pong"
        assert decode_message(line.decode()).type == "pong"

    def test_malformed_json(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{nope\n")

    def test_non_object(self):
        with pytest.raises(ProtocolError):
            decode_message(json.dumps([1, 2]))

    def test_missing_type(self):
        with pytest.raises(ProtocolError):
            decode_message(json.dumps({"payload": 1}))

    def test_non_string_type(self):
        with pytest.raises(ProtocolError):
            decode_message(json.dumps({"type": 7}))

    def test_unknown_type_rejected_at_decode(self):
        with pytest.raises(ProtocolError):
            decode_message(json.dumps({"type": "gossip"}))


@settings(max_examples=50)
@given(
    msg_type=st.sampled_from(["register", "sync", "ping", "registered",
                              "sync_ok", "pong", "error"]),
    payload=st.dictionaries(
        st.text(min_size=1, max_size=10).filter(lambda s: s != "type"),
        st.one_of(
            st.integers(min_value=-1000, max_value=1000),
            st.text(max_size=20),
            st.lists(st.text(max_size=5), max_size=5),
        ),
        max_size=5,
    ),
)
def test_property_codec_roundtrip(msg_type, payload):
    msg = Message(msg_type, payload)
    restored = decode_message(encode_message(msg))
    assert restored.type == msg.type
    assert restored.payload == payload
