"""Tests for the sqlite result database."""

import pytest

from repro.analysis.database import ResultDatabase
from repro.analysis.report import metric_tables
from repro.core.resources import Resource


@pytest.fixture(scope="module")
def db(small_study):
    database = ResultDatabase()
    database.import_runs(small_study.runs)
    yield database
    database.close()


class TestImport:
    def test_count(self, db, small_study):
        assert len(db) == len(small_study.runs)

    def test_reimport_idempotent(self, small_study):
        with ResultDatabase() as database:
            database.import_runs(small_study.runs)
            database.import_runs(small_study.runs)
            assert len(database) == len(small_study.runs)

    def test_file_backed(self, tmp_path, small_study):
        path = tmp_path / "results.sqlite"
        with ResultDatabase(path) as database:
            database.import_runs(small_study.runs)
        with ResultDatabase(path) as database:
            assert len(database) == len(small_study.runs)


class TestQueries:
    def test_runs_roundtrip(self, db, small_study):
        restored = sorted(db.runs(), key=lambda r: r.run_id)
        original = sorted(small_study.runs, key=lambda r: r.run_id)
        assert restored == original

    def test_task_filter(self, db):
        runs = list(db.runs(task="quake"))
        assert runs
        assert all(r.context.task == "quake" for r in runs)

    def test_resource_filter(self, db):
        runs = list(db.runs(resource=Resource.DISK))
        assert runs
        assert all(r.shapes.get(Resource.DISK) in ("ramp", "step") for r in runs)

    def test_blank_filter(self, db, small_study):
        blanks = list(db.runs(blank=True))
        assert len(blanks) == len(small_study.runs) // 4

    def test_user_filter(self, db, small_study):
        user = small_study.profiles[0].user_id
        runs = list(db.runs(user_id=user))
        assert len(runs) == 32

    def test_tasks_listing(self, db):
        assert db.tasks() == ["ie", "powerpoint", "quake", "word"]

    def test_outcome_counts(self, db, small_study):
        counts = db.outcome_counts()
        assert sum(counts.values()) == len(small_study.runs)
        word_counts = db.outcome_counts(task="word")
        assert sum(word_counts.values()) == 6 * 8


class TestAnalysisFromDatabase:
    def test_metric_tables_from_db_match_memory(self, db, small_study):
        from_db, _ = metric_tables(list(db.runs()))
        from_mem, _ = metric_tables(list(small_study.runs))
        for key in from_mem:
            assert from_db[key].f_d == from_mem[key].f_d
