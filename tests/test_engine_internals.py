"""Unit tests for the analytic engine's building blocks."""

import numpy as np
import pytest

from repro.core.exercise import constant, ramp
from repro.core.resources import Resource
from repro.core.testcase import Testcase
from repro.study.engine import _level_array, _threshold_fire_step


class TestLevelArray:
    def test_same_length_function(self):
        tc = Testcase.single("t", ramp(Resource.CPU, 2.0, 10.0, 1.0))
        arr = _level_array(tc, Resource.CPU, 10)
        assert np.array_equal(arr, tc.functions[Resource.CPU].values)

    def test_short_function_pads_like_levels_at(self):
        tc = Testcase(
            "t",
            {
                Resource.CPU: constant(Resource.CPU, 1.0, 5.0, 1.0),
                Resource.DISK: constant(Resource.DISK, 2.0, 10.0, 1.0),
            },
        )
        arr = _level_array(tc, Resource.CPU, 10)
        # Matches Testcase.levels_at at every step, including the boundary
        # step at exactly the short function's duration.
        for i in range(10):
            assert arr[i] == tc.levels_at(float(i))[Resource.CPU], i


class TestThresholdFireStep:
    def test_immediate_fire_with_zero_delay_equivalent(self):
        levels = np.array([0.0, 1.0, 2.0, 3.0])
        # delay shorter than one sample: fires at the crossing sample.
        assert _threshold_fire_step(levels, 1.5, 0.0, 1.0) == 2

    def test_delay_postpones(self):
        levels = np.array([0.0, 2.0, 2.0, 2.0, 2.0])
        assert _threshold_fire_step(levels, 1.5, 2.0, 1.0) == 3

    def test_dip_resets_the_clock(self):
        levels = np.array([2.0, 2.0, 0.0, 2.0, 2.0, 2.0])
        # Crossing at 0 is reset by the dip at 2; the run from 3 matures
        # at index 5 (2 seconds after crossing at 3).
        assert _threshold_fire_step(levels, 1.5, 2.0, 1.0) == 5

    def test_never_fires_below_threshold(self):
        levels = np.array([0.1, 0.2, 0.3])
        assert _threshold_fire_step(levels, 1.0, 0.0, 1.0) is None

    def test_never_fires_when_runs_too_short(self):
        levels = np.array([2.0, 0.0, 2.0, 0.0, 2.0, 0.0])
        assert _threshold_fire_step(levels, 1.5, 1.0, 1.0) is None

    def test_exact_equality_counts_as_crossing(self):
        levels = np.array([0.0, 1.5])
        assert _threshold_fire_step(levels, 1.5, 0.0, 1.0) == 1

    def test_sub_second_rates(self):
        levels = np.full(20, 2.0)
        # rate 4 Hz (dt 0.25): 1.0 s delay elapses at index 4.
        assert _threshold_fire_step(levels, 1.0, 1.0, 0.25) == 4
