"""Unit tests for the analytic engine's building blocks."""

import numpy as np
import pytest

from repro.core.exercise import constant, ramp
from repro.core.resources import Resource
from repro.core.testcase import Testcase
from repro.study.engine import _level_array, _threshold_fire_step


class TestLevelArray:
    def test_same_length_function(self):
        tc = Testcase.single("t", ramp(Resource.CPU, 2.0, 10.0, 1.0))
        arr = _level_array(tc, Resource.CPU, 10)
        assert np.array_equal(arr, tc.functions[Resource.CPU].values)

    def test_short_function_pads_like_levels_at(self):
        tc = Testcase(
            "t",
            {
                Resource.CPU: constant(Resource.CPU, 1.0, 5.0, 1.0),
                Resource.DISK: constant(Resource.DISK, 2.0, 10.0, 1.0),
            },
        )
        arr = _level_array(tc, Resource.CPU, 10)
        # Matches Testcase.levels_at at every step, including the boundary
        # step at exactly the short function's duration.
        for i in range(10):
            assert arr[i] == tc.levels_at(float(i))[Resource.CPU], i


class TestThresholdFireStep:
    def test_immediate_fire_with_zero_delay_equivalent(self):
        levels = np.array([0.0, 1.0, 2.0, 3.0])
        # delay shorter than one sample: fires at the crossing sample.
        assert _threshold_fire_step(levels, 1.5, 0.0, 1.0) == 2

    def test_delay_postpones(self):
        levels = np.array([0.0, 2.0, 2.0, 2.0, 2.0])
        assert _threshold_fire_step(levels, 1.5, 2.0, 1.0) == 3

    def test_dip_resets_the_clock(self):
        levels = np.array([2.0, 2.0, 0.0, 2.0, 2.0, 2.0])
        # Crossing at 0 is reset by the dip at 2; the run from 3 matures
        # at index 5 (2 seconds after crossing at 3).
        assert _threshold_fire_step(levels, 1.5, 2.0, 1.0) == 5

    def test_never_fires_below_threshold(self):
        levels = np.array([0.1, 0.2, 0.3])
        assert _threshold_fire_step(levels, 1.0, 0.0, 1.0) is None

    def test_never_fires_when_runs_too_short(self):
        levels = np.array([2.0, 0.0, 2.0, 0.0, 2.0, 0.0])
        assert _threshold_fire_step(levels, 1.5, 1.0, 1.0) is None

    def test_exact_equality_counts_as_crossing(self):
        levels = np.array([0.0, 1.5])
        assert _threshold_fire_step(levels, 1.5, 0.0, 1.0) == 1

    def test_sub_second_rates(self):
        levels = np.full(20, 2.0)
        # rate 4 Hz (dt 0.25): 1.0 s delay elapses at index 4.
        assert _threshold_fire_step(levels, 1.0, 1.0, 0.25) == 4


class TestLevelArrayBoundaryBothEngines:
    """The "sample exactly at a short function's duration reads the
    final value" rule, pinned for every engine that consumes
    _level_array before anything relies on it."""

    def _short_testcase(self):
        # CPU function ends at t=5 inside a 10-second testcase: step 5
        # samples t == duration exactly, steps 6+ are past the end.
        return Testcase(
            "t",
            {
                Resource.CPU: constant(Resource.CPU, 1.0, 5.0, 1.0),
                Resource.DISK: constant(Resource.DISK, 2.0, 10.0, 1.0),
            },
        )

    def test_boundary_step_reads_final_value_then_zero(self):
        arr = _level_array(self._short_testcase(), Resource.CPU, 10)
        assert arr[4] == 1.0   # last in-range sample
        assert arr[5] == 1.0   # t == duration: still the final value
        assert np.all(arr[6:] == 0.0)  # strictly past the end

    def test_batch_engine_shares_the_same_level_arrays(self):
        from repro.machine import SimulatedMachine
        from repro.study import batch as batch_mod
        from repro.apps import get_task
        from repro.users.behavior import BehaviorParams
        from repro.users.tolerance import paper_calibrated_table

        # The batch cell plan must import the *same* function, not a
        # reimplementation that could drift on this boundary.
        assert batch_mod._level_array is _level_array

        tc = self._short_testcase()
        machine = SimulatedMachine()
        task = get_task("word")
        cell = batch_mod._CellPlan(
            "word", tc, machine, task,
            machine.interactivity_model(task),
            paper_calibrated_table(), BehaviorParams(),
        )
        for resource in tc.functions:
            expected = [
                tc.levels_at(float(i))[resource]
                for i in range(cell.n_steps)
            ]
            assert cell.level_arrays[resource].tolist() == expected

    def test_boundary_affects_fire_scans_identically(self):
        # A threshold met only by the boundary sample: both scan
        # flavors and the scalar must fire at exactly step m.
        tc = self._short_testcase()
        arr = _level_array(tc, Resource.CPU, 10)
        from repro.study import batch as batch_mod

        scalar = _threshold_fire_step(arr, 1.0, 4.5, 1.0)
        generic = batch_mod._fire_steps(
            arr, np.array([1.0]), np.array([4.5]), 1.0
        )
        assert scalar == 5 and generic[0] == 5
