"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.bootstrap import (
    bootstrap_c_percentile,
    bootstrap_f_d,
)
from repro.core.metrics import DiscomfortObservation
from repro.core.resources import Resource
from repro.errors import InsufficientDataError, ValidationError


def obs(level, censored=False):
    return DiscomfortObservation(
        level=level, censored=censored, resource=Resource.CPU
    )


def sample(n=120, seed=0, censor_above=None):
    rng = np.random.default_rng(seed)
    levels = np.exp(rng.normal(0.0, 0.4, size=n))
    out = []
    for level in levels:
        if censor_above is not None and level > censor_above:
            out.append(obs(censor_above, censored=True))
        else:
            out.append(obs(float(level)))
    return out


class TestC05Bootstrap:
    def test_interval_brackets_estimate(self):
        observations = sample()
        interval = bootstrap_c_percentile(observations, seed=1)
        assert interval.low <= interval.estimate <= interval.high
        assert interval.estimate in interval

    def test_deterministic_given_seed(self):
        observations = sample()
        a = bootstrap_c_percentile(observations, n_resamples=200, seed=2)
        b = bootstrap_c_percentile(observations, n_resamples=200, seed=2)
        assert a == b

    def test_interval_narrows_with_more_data(self):
        small = bootstrap_c_percentile(sample(40, seed=3), n_resamples=300, seed=1)
        large = bootstrap_c_percentile(sample(800, seed=3), n_resamples=300, seed=1)
        assert (large.high - large.low) < (small.high - small.low)

    def test_degenerate_replicates_counted(self):
        # Only ~8% of runs react: p=0.05 occasionally unreachable in a
        # resample, which must be reported, not hidden.
        observations = [obs(1.0)] * 4 + [obs(5.0, censored=True)] * 46
        interval = bootstrap_c_percentile(
            observations, p=0.05, n_resamples=300, seed=4
        )
        assert 0.0 <= interval.degenerate_fraction < 1.0

    def test_undefined_statistic_raises(self):
        observations = [obs(5.0, censored=True)] * 10
        with pytest.raises(InsufficientDataError):
            bootstrap_c_percentile(observations, p=0.5, seed=5)

    def test_validation(self):
        with pytest.raises(InsufficientDataError):
            bootstrap_c_percentile([], seed=1)
        with pytest.raises(ValidationError):
            bootstrap_c_percentile(sample(20), n_resamples=5, seed=1)
        with pytest.raises(ValidationError):
            bootstrap_c_percentile(sample(20), confidence=1.5, seed=1)


class TestFdBootstrap:
    def test_brackets_true_fraction(self):
        observations = sample(censor_above=1.5)
        interval = bootstrap_f_d(observations, seed=6)
        true_fd = np.mean([not o.censored for o in observations])
        assert interval.low <= true_fd <= interval.high

    def test_coverage_against_known_process(self):
        """~95% of bootstrap intervals cover the true f_d."""
        rng = np.random.default_rng(7)
        covered = 0
        trials = 40
        p_true = 0.6
        for trial in range(trials):
            observations = [
                obs(1.0) if rng.random() < p_true else obs(2.0, censored=True)
                for _ in range(150)
            ]
            interval = bootstrap_f_d(
                observations, n_resamples=200, seed=trial
            )
            covered += p_true in interval
        assert covered / trials > 0.8


class TestOnStudyData:
    def test_published_c05_within_measured_band(self, study_runs):
        """The paper's total CPU c_0.05 (0.35) sits inside our bootstrap
        band — the point-estimate differences in EXPERIMENTS.md are within
        sampling noise at n=132."""
        from repro.analysis.cdf import observations_from_runs

        observations = observations_from_runs(
            study_runs, resource=Resource.CPU
        )
        interval = bootstrap_c_percentile(
            observations, 0.05, n_resamples=500, seed=8
        )
        assert 0.35 in interval or abs(interval.high - 0.35) < 0.15
