"""Unit and property tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientDataError, ValidationError
from repro.util.stats import (
    ecdf,
    mean_confidence_interval,
    paired_t_test,
    quantile_from_ecdf,
    unpaired_t_test,
    welch_t_test,
)


class TestEcdf:
    def test_simple(self):
        x, f = ecdf(np.array([3.0, 1.0, 2.0]))
        assert list(x) == [1.0, 2.0, 3.0]
        assert np.allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, f = ecdf(np.array([]))
        assert x.size == 0 and f.size == 0

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            ecdf(np.array([1.0, np.nan]))

    def test_duplicates(self):
        x, f = ecdf(np.array([2.0, 2.0, 2.0]))
        assert f[-1] == 1.0 and x[0] == 2.0


class TestQuantile:
    def test_basic(self):
        x, f = ecdf(np.arange(1.0, 101.0))
        assert quantile_from_ecdf(x, f, 0.05) == 5.0
        assert quantile_from_ecdf(x, f, 1.0) == 100.0

    def test_censored_plateau_raises(self):
        x = np.array([1.0, 2.0])
        f = np.array([0.1, 0.2])  # CDF caps at 0.2 (exhausted region)
        assert quantile_from_ecdf(x, f, 0.15) == 2.0
        with pytest.raises(InsufficientDataError):
            quantile_from_ecdf(x, f, 0.5)

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            quantile_from_ecdf(np.array([]), np.array([]), 0.5)

    def test_bad_q(self):
        x, f = ecdf(np.array([1.0]))
        with pytest.raises(ValidationError):
            quantile_from_ecdf(x, f, 0.0)
        with pytest.raises(ValidationError):
            quantile_from_ecdf(x, f, 1.5)


class TestMeanCI:
    def test_interval_contains_mean(self):
        ci = mean_confidence_interval(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ci.low < ci.mean < ci.high
        assert ci.mean == 2.5
        assert 2.5 in ci
        assert ci.n == 4

    def test_single_sample_degenerate(self):
        ci = mean_confidence_interval(np.array([5.0]))
        assert ci.low == ci.mean == ci.high == 5.0

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            mean_confidence_interval(np.array([]))

    def test_tighter_with_more_data(self):
        rng = np.random.default_rng(0)
        small = mean_confidence_interval(rng.normal(0, 1, 10))
        large = mean_confidence_interval(rng.normal(0, 1, 1000))
        assert large.half_width < small.half_width

    def test_confidence_level_widens(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        ci95 = mean_confidence_interval(data, 0.95)
        ci99 = mean_confidence_interval(data, 0.99)
        assert ci99.half_width > ci95.half_width


class TestTTests:
    def test_detects_difference(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 1.0, 50)
        b = rng.normal(2.0, 1.0, 50)
        result = unpaired_t_test(a, b)
        assert result.p_value < 1e-6
        assert result.diff == pytest.approx(np.mean(b) - np.mean(a))
        assert result.significant()

    def test_no_difference(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0.0, 1.0, 200)
        b = rng.normal(0.0, 1.0, 200)
        assert unpaired_t_test(a, b).p_value > 0.01

    def test_insufficient_data(self):
        with pytest.raises(InsufficientDataError):
            unpaired_t_test(np.array([1.0]), np.array([1.0, 2.0]))

    def test_welch_matches_direction(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 0.5, 40)
        b = rng.normal(1.0, 3.0, 40)
        w = welch_t_test(a, b)
        assert w.diff > 0

    def test_paired_detects_shift(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0.0, 1.0, 30)
        b = a + 0.5 + rng.normal(0.0, 0.05, 30)  # near-constant shift
        result = paired_t_test(a, b)
        assert result.p_value < 1e-10
        assert result.diff == pytest.approx(0.5, abs=0.05)

    def test_paired_shape_mismatch(self):
        with pytest.raises(ValidationError):
            paired_t_test(np.array([1.0, 2.0]), np.array([1.0]))

    def test_paired_insufficient(self):
        with pytest.raises(InsufficientDataError):
            paired_t_test(np.array([1.0]), np.array([2.0]))


@settings(max_examples=50)
@given(
    samples=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=300,
    )
)
def test_property_ecdf_monotone_and_normalized(samples):
    x, f = ecdf(np.array(samples))
    assert np.all(np.diff(x) >= 0)
    assert np.all(np.diff(f) > 0)
    assert f[-1] == pytest.approx(1.0)
    assert f[0] == pytest.approx(1.0 / len(samples))


@settings(max_examples=50)
@given(
    samples=st.lists(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        min_size=2,
        max_size=200,
    ),
    q=st.floats(min_value=0.01, max_value=1.0),
)
def test_property_quantile_is_attained(samples, q):
    x, f = ecdf(np.array(samples))
    value = quantile_from_ecdf(x, f, q)
    # At least fraction q of samples are <= the returned value.
    assert np.mean(np.array(samples) <= value) >= q - 1e-12
    assert value in samples


@settings(max_examples=50)
@given(
    samples=st.lists(
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        min_size=2,
        max_size=100,
    )
)
def test_property_ci_brackets_sample_mean(samples):
    ci = mean_confidence_interval(np.array(samples))
    assert ci.low <= ci.mean <= ci.high
    assert ci.mean == pytest.approx(np.mean(samples))
