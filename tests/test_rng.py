"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, ensure_rng, spawn_child


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, 10)
        b = ensure_rng(42).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = ensure_rng(seq)
        assert isinstance(a, np.random.Generator)


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(1, "population").integers(0, 1000, 5)
        b = derive_rng(1, "population").integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_different_key_different_stream(self):
        a = derive_rng(1, "x").integers(0, 1 << 30, 8)
        b = derive_rng(1, "y").integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = derive_rng(1, "x").integers(0, 1 << 30, 8)
        b = derive_rng(2, "x").integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_multi_part_keys(self):
        a = derive_rng(1, "user", 3).integers(0, 1 << 30, 4)
        b = derive_rng(1, "user", 4).integers(0, 1 << 30, 4)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        # Deriving "b" after "a" must equal deriving "b" alone.
        _ = derive_rng(9, "a").integers(0, 100, 3)
        b1 = derive_rng(9, "b").integers(0, 1 << 30, 6)
        b2 = derive_rng(9, "b").integers(0, 1 << 30, 6)
        assert np.array_equal(b1, b2)

    def test_rejects_generator_seed(self):
        with pytest.raises(TypeError):
            derive_rng(np.random.default_rng(0), "k")

    def test_none_entropy_allowed(self):
        rng = derive_rng(None, "k")
        assert isinstance(rng, np.random.Generator)


class TestSpawnChild:
    def test_child_independent_of_parent_continuation(self):
        parent = np.random.default_rng(5)
        child = spawn_child(parent)
        child_draws = child.integers(0, 1 << 30, 4)
        parent2 = np.random.default_rng(5)
        child2 = spawn_child(parent2)
        assert np.array_equal(child_draws, child2.integers(0, 1 << 30, 4))
