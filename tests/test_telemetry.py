"""Unit tests for repro.telemetry: metrics, events, spans, exporter."""

import json
import socket
import threading

import pytest

from repro.errors import SerializationError, StoreError, ValidationError
from repro.telemetry import (
    Event,
    EventLog,
    JsonLinesSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    Telemetry,
    Tracer,
    get_telemetry,
    read_events,
    set_telemetry,
    use_telemetry,
)
from repro.telemetry.exporter import MetricsExporter
from repro.telemetry.summary import render_summary, span_stats, summarize_events


class TestCounter:
    def test_unlabelled(self):
        reg = MetricsRegistry()
        c = reg.counter("runs_total", "Runs.")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "Requests.", labelnames=("type",))
        c.inc(type="sync")
        c.inc(4, type="register")
        assert c.value(type="sync") == 1
        assert c.value(type="register") == 4
        assert c.value(type="ping") == 0

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", labelnames=("type",))
        with pytest.raises(ValidationError):
            c.inc()
        with pytest.raises(ValidationError):
            c.inc(kind="sync")

    def test_cannot_decrease(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValidationError):
            reg.gauge("a_total")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("ceiling", unit="level")
        g.set(0.8)
        g.inc(0.1)
        g.dec(0.4)
        assert g.value() == pytest.approx(0.5)

    def test_labelled(self):
        g = MetricsRegistry().gauge("level", labelnames=("resource",))
        g.set(1.5, resource="cpu")
        assert g.value(resource="cpu") == 1.5


class TestHistogram:
    def test_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot_value()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(55.55)
        assert snap["buckets"] == {"0.1": 1, "1": 2, "10": 3}

    def test_labelled_exposition_has_le_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "lat_seconds", "Latency.", unit="seconds",
            labelnames=("type",), buckets=(0.5, 2.0),
        )
        h.observe(1.0, type="sync")
        text = reg.render()
        assert '# TYPE lat_seconds histogram' in text
        assert '# UNIT lat_seconds seconds' in text
        assert 'lat_seconds_bucket{type="sync",le="0.5"} 0' in text
        assert 'lat_seconds_bucket{type="sync",le="2"} 1' in text
        assert 'lat_seconds_bucket{type="sync",le="+Inf"} 1' in text
        assert 'lat_seconds_sum{type="sync"} 1.0' in text
        assert 'lat_seconds_count{type="sync"} 1' in text

    def test_rejects_empty_or_duplicate_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.histogram("a", buckets=())
        with pytest.raises(ValidationError):
            reg.histogram("b", buckets=(1.0, 1.0))


class TestExposition:
    def test_render_sorted_and_terminated(self):
        reg = MetricsRegistry()
        reg.counter("z_total", "Z.").inc()
        reg.gauge("a_gauge", "A.").set(2)
        text = reg.render()
        assert text.index("a_gauge") < text.index("z_total")
        assert text.endswith("\n")

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("esc_total", labelnames=("path",))
        c.inc(path='a"b\\c\nd')
        assert 'path="a\\"b\\\\c\\nd"' in reg.render()

    def test_snapshot_carries_metadata(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "Xs seen.", unit="items").inc(3)
        snap = reg.snapshot()
        assert snap["x_total"] == {
            "kind": "counter",
            "description": "Xs seen.",
            "unit": "items",
            "labels": [],
            "value": 3.0,
        }

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().counter("bad name")


class TestEvents:
    def test_round_trip(self):
        event = Event("client.run", 12.5, {"testcase": "t1", "n": 3})
        back = Event.from_json(event.to_json())
        assert back == event

    def test_json_lines_sink(self, tmp_path):
        path = tmp_path / "log" / "events.jsonl"
        log = EventLog(JsonLinesSink(path), clock=lambda: 1.0)
        log.emit("a", x=1)
        log.emit("b", y="two")
        log.close()
        events = read_events(path)
        assert [e.name for e in events] == ["a", "b"]
        assert events[0].fields == {"x": 1}
        assert events[1].ts == 1.0
        # every line is independently parseable JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_null_sink_is_silent_and_disabled(self):
        log = EventLog()
        assert not log.enabled
        log.emit("ignored", x=1)  # must not raise

    def test_memory_sink(self):
        sink = MemorySink()
        log = EventLog(sink, clock=lambda: 2.0)
        log.emit("hello")
        assert len(sink) == 1
        assert list(sink)[0].name == "hello"

    def test_bad_lines_raise_with_line_number(self):
        with pytest.raises(SerializationError, match="line 2"):
            read_events(['{"event": "ok"}', "{nope"])

    def test_missing_file_is_store_error(self, tmp_path):
        with pytest.raises(StoreError):
            read_events(tmp_path / "absent.jsonl")

    def test_unwritable_sink_path_is_store_error(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        with pytest.raises(StoreError, match="cannot open event log"):
            JsonLinesSink(blocker / "ev.jsonl")

    def test_unserializable_event_raises(self):
        circular: dict = {}
        circular["self"] = circular
        with pytest.raises(SerializationError):
            Event("bad", 0.0, {"x": circular}).to_json()


class TestTracing:
    def _tracer(self):
        sink = MemorySink()
        ticks = iter(range(100))
        tracer = Tracer(
            EventLog(sink, clock=lambda: 0.0),
            clock=lambda: float(next(ticks)),
        )
        return tracer, sink

    def test_nesting_parent_child(self):
        tracer, sink = self._tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_ev = sink.events
        assert inner.fields["span"] == "inner"
        assert inner.fields["parent"] == outer.span_id
        assert inner.fields["depth"] == 1
        assert outer_ev.fields["parent"] is None
        assert outer_ev.fields["depth"] == 0

    def test_durations_from_clock(self):
        tracer, sink = self._tracer()
        with tracer.span("a"):
            pass
        assert sink.events[0].fields["duration_s"] == 1.0

    def test_exception_outcome_and_propagation(self):
        tracer, sink = self._tracer()
        with pytest.raises(KeyError):
            with tracer.span("bad"):
                raise KeyError("x")
        assert sink.events[0].fields["outcome"] == "error:KeyError"

    def test_annotate(self):
        tracer, sink = self._tracer()
        with tracer.span("sync") as span:
            span.annotate(downloaded=7)
        assert sink.events[0].fields["downloaded"] == 7


class TestTelemetryHub:
    def test_default_is_disabled(self):
        assert not get_telemetry().enabled

    def test_disabled_span_is_noop(self):
        tel = Telemetry.disabled()
        with tel.span("x") as span:
            span.annotate(ignored=True)
        tel.emit("nothing")

    def test_use_telemetry_installs_and_restores(self):
        tel = Telemetry.in_memory()
        before = get_telemetry()
        with use_telemetry(tel) as active:
            assert get_telemetry() is tel is active
        assert get_telemetry() is before

    def test_set_telemetry_none_restores_default(self):
        prev = set_telemetry(Telemetry.in_memory())
        try:
            assert get_telemetry().enabled
        finally:
            set_telemetry(None)
        assert not get_telemetry().enabled
        assert prev is not None

    def test_to_path_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "ev.jsonl"
        tel = Telemetry.to_path(path)
        tel.emit("x")
        tel.close()
        assert path.exists()


class TestExporter:
    def _scrape(self, address, request=b""):
        with socket.create_connection(address, timeout=5.0) as sock:
            if request:
                sock.sendall(request)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks).decode()

    def test_http_scrape(self):
        reg = MetricsRegistry()
        reg.counter("up_total", "Ups.").inc(2)
        with MetricsExporter(reg) as exporter:
            body = self._scrape(
                exporter.address,
                b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n",
            )
        assert body.startswith("HTTP/1.0 200 OK")
        assert "up_total 2" in body

    def test_plain_tcp_scrape(self):
        reg = MetricsRegistry()
        reg.gauge("temp", "T.").set(1.5)
        with MetricsExporter(reg) as exporter:
            body = self._scrape(exporter.address)
        assert not body.startswith("HTTP/")
        assert "temp 1.5" in body

    def test_concurrent_scrapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        with MetricsExporter(reg) as exporter:
            results = []
            threads = [
                threading.Thread(
                    target=lambda: results.append(self._scrape(exporter.address))
                )
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 4
        assert all("c_total 1" in r for r in results)

    def test_concurrent_mixed_http_and_tcp_scrapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(3)
        with MetricsExporter(reg) as exporter:
            results = []
            lock = threading.Lock()

            def scrape(request):
                body = self._scrape(exporter.address, request)
                with lock:
                    results.append(body)

            requests = [b"", b"GET /metrics HTTP/1.0\r\n\r\n"] * 4
            threads = [
                threading.Thread(target=scrape, args=(req,)) for req in requests
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 8
        assert all("c_total 3" in r for r in results)

    def test_unknown_path_is_404(self):
        reg = MetricsRegistry()
        with MetricsExporter(reg) as exporter:
            body = self._scrape(
                exporter.address, b"GET /definitely/not/here HTTP/1.0\r\n\r\n"
            )
        assert body.startswith("HTTP/1.0 404")
        assert "unknown path" in body

    def test_head_request_suppresses_body(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        with MetricsExporter(reg) as exporter:
            reply = self._scrape(
                exporter.address, b"HEAD /metrics HTTP/1.0\r\n\r\n"
            )
        assert reply.startswith("HTTP/1.0 200 OK")
        assert "c_total" not in reply.split("\r\n\r\n", 1)[1]

    def test_connection_reset_mid_scrape_does_not_kill_exporter(self):
        import struct

        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        with MetricsExporter(reg) as exporter:
            # Open, send half a request line, then slam the door with an
            # RST (SO_LINGER 0) so the handler's read/write hits an OSError.
            for _ in range(3):
                sock = socket.create_connection(exporter.address, timeout=5.0)
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                sock.sendall(b"GET /metr")
                sock.close()
            # The exporter must still serve clean scrapes afterwards.
            body = self._scrape(
                exporter.address, b"GET /metrics HTTP/1.0\r\n\r\n"
            )
        assert "c_total 1" in body

    def test_snapshot_endpoint_serves_json(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "C.").inc(2)
        with MetricsExporter(reg) as exporter:
            reply = self._scrape(
                exporter.address, b"GET /snapshot HTTP/1.0\r\n\r\n"
            )
        body = reply.split("\r\n\r\n", 1)[1]
        snapshot = json.loads(body)
        assert snapshot["c_total"]["value"] == 2

    def test_clients_endpoint_without_rollups_is_empty_list(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            reply = self._scrape(
                exporter.address, b"GET /clients HTTP/1.0\r\n\r\n"
            )
        assert json.loads(reply.split("\r\n\r\n", 1)[1]) == []

    def test_push_bad_payloads_are_400(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            host, port = exporter.address
            for body in (b"{nope", b'{"snapshot": {}}', b'{"client_id": ""}'):
                request = (
                    b"POST /push HTTP/1.0\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                reply = self._scrape(exporter.address, request)
                assert reply.startswith("HTTP/1.0 400"), reply
            # no Content-Length at all
            reply = self._scrape(exporter.address, b"POST /push HTTP/1.0\r\n\r\n")
            assert reply.startswith("HTTP/1.0 400")

    def test_push_federates_into_fleet_view(self):
        from repro.telemetry import ClientRollups, push_snapshot

        server_reg = MetricsRegistry()
        server_reg.counter("uucs_server_syncs_total", "S.").inc(5)
        rollups = ClientRollups()
        with MetricsExporter(server_reg, rollups=rollups) as exporter:
            host, port = exporter.address
            for n, client in enumerate(("guid-a", "guid-b"), start=1):
                client_reg = MetricsRegistry()
                client_reg.counter("uucs_client_runs_total", "R.").inc(10 * n)
                client_reg.gauge("uucs_client_clock").set(float(n))
                reply = push_snapshot(host, port, client, client_reg.snapshot())
                assert reply["ok"] is True
            body = self._scrape(
                exporter.address, b"GET /metrics HTTP/1.0\r\n\r\n"
            )
            # counters sum across clients; the local registry is untouched
            assert "uucs_client_runs_total 30" in body
            assert "uucs_server_syncs_total 5" in body
            assert "uucs_pushed_clients 2" in body
            assert exporter.pushed_clients() == ["guid-a", "guid-b"]
            assert server_reg.get("uucs_client_runs_total") is None
            # re-pushing replaces (cumulative snapshots are idempotent)
            client_reg = MetricsRegistry()
            client_reg.counter("uucs_client_runs_total", "R.").inc(15)
            push_snapshot(host, port, "guid-a", client_reg.snapshot())
            body = self._scrape(
                exporter.address, b"GET /metrics HTTP/1.0\r\n\r\n"
            )
            assert "uucs_client_runs_total 35" in body
            # rollups saw the pushes
            assert rollups.get("guid-a").pushes == 2
            assert rollups.get("guid-b").pushes == 1


class TestSummary:
    def test_span_stats(self):
        events = [
            Event("span", 0.0, {"span": "s", "duration_s": 1.0, "outcome": "ok"}),
            Event("span", 0.0, {"span": "s", "duration_s": 3.0,
                                "outcome": "error:ValueError"}),
            Event("other", 0.0, {}),
        ]
        stats = span_stats(events)
        assert stats["s"]["count"] == 2
        assert stats["s"]["errors"] == 1
        assert stats["s"]["total_s"] == 4.0
        assert stats["s"]["mean_s"] == 2.0
        assert stats["s"]["max_s"] == 3.0

    def test_summarize_renders_tables(self):
        events = [
            Event("client.run", 0.0, {}),
            Event("span", 0.0, {"span": "hot_sync", "duration_s": 0.1}),
        ]
        text = summarize_events(events)
        assert "Event counts" in text
        assert "client.run" in text
        assert "Spans" in text
        assert "hot_sync" in text

    def test_render_summary_from_path(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        tel = Telemetry.to_path(path)
        tel.emit("a.b")
        with tel.span("work"):
            pass
        tel.close()
        text = render_summary(path)
        assert "a.b" in text and "work" in text
