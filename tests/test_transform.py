"""Tests for testcase manipulation tools."""

import numpy as np
import pytest

from repro.core import (
    Resource,
    Testcase,
    clip_levels,
    constant,
    crop,
    merge,
    ramp,
    retime,
    scale_levels,
    with_id,
)
from repro.errors import ValidationError


@pytest.fixture()
def cpu_ramp():
    return Testcase.single(
        "base", ramp(Resource.CPU, 4.0, 100.0, 2.0), {"task": "ie"}
    )


class TestScale:
    def test_scales_levels(self, cpu_ramp):
        scaled = scale_levels(cpu_ramp, 0.5)
        assert scaled.functions[Resource.CPU].max_level() == pytest.approx(2.0)
        assert scaled.testcase_id == "base-x0.5"
        assert scaled.metadata == {"task": "ie"}

    def test_overflow_rejected(self, cpu_ramp):
        with pytest.raises(ValidationError):
            scale_levels(cpu_ramp, 100.0)
        with pytest.raises(ValidationError):
            scale_levels(cpu_ramp, -1.0)

    def test_original_untouched(self, cpu_ramp):
        scale_levels(cpu_ramp, 0.5)
        assert cpu_ramp.functions[Resource.CPU].max_level() == 4.0


class TestClip:
    def test_clips_to_ceiling(self, cpu_ramp):
        clipped = clip_levels(cpu_ramp, 1.5)
        assert clipped.functions[Resource.CPU].max_level() == 1.5
        # Below the ceiling the trajectory is unchanged.
        assert clipped.functions[Resource.CPU].level_at(10.0) == pytest.approx(
            cpu_ramp.functions[Resource.CPU].level_at(10.0)
        )

    def test_negative_ceiling(self, cpu_ramp):
        with pytest.raises(ValidationError):
            clip_levels(cpu_ramp, -0.1)


class TestCrop:
    def test_crop_window(self, cpu_ramp):
        cropped = crop(cpu_ramp, 25.0, 75.0)
        fn = cropped.functions[Resource.CPU]
        assert fn.duration == pytest.approx(50.0)
        assert fn.level_at(0.0) == pytest.approx(1.0, abs=0.05)

    def test_crop_beyond_short_function(self):
        tc = Testcase(
            "multi",
            {
                Resource.CPU: constant(Resource.CPU, 1.0, 10.0, 1.0),
                Resource.DISK: constant(Resource.DISK, 1.0, 100.0, 1.0),
            },
        )
        cropped = crop(tc, 50.0, 60.0)
        # The CPU function ended before the window: a single zero remains.
        assert cropped.functions[Resource.CPU].is_blank()
        assert cropped.functions[Resource.DISK].level_at(5.0) == 1.0


class TestRetime:
    def test_faster_same_peak(self, cpu_ramp):
        fast = retime(cpu_ramp, 2.0)
        fn = fast.functions[Resource.CPU]
        assert fn.duration == pytest.approx(50.0)
        assert fn.max_level() == pytest.approx(4.0, abs=0.1)
        assert fn.sample_rate == cpu_ramp.sample_rate

    def test_frog_in_pot_knob(self, cpu_ramp):
        # Same trajectory slowed 2x: the ramp reaches each level later.
        slow = retime(cpu_ramp, 0.5)
        assert slow.functions[Resource.CPU].duration == pytest.approx(200.0)
        mid_fast = cpu_ramp.functions[Resource.CPU].level_at(50.0)
        mid_slow = slow.functions[Resource.CPU].level_at(100.0)
        assert mid_slow == pytest.approx(mid_fast, abs=0.1)

    def test_bad_speed(self, cpu_ramp):
        with pytest.raises(ValidationError):
            retime(cpu_ramp, 0.0)


class TestMerge:
    def test_disjoint_resources(self, cpu_ramp):
        disk = Testcase.single(
            "disk", ramp(Resource.DISK, 5.0, 100.0, 2.0), {"extra": "1"}
        )
        merged = merge(cpu_ramp, disk)
        assert set(merged.functions) == {Resource.CPU, Resource.DISK}
        assert merged.testcase_id == "base+disk"
        assert merged.metadata["task"] == "ie"

    def test_overlap_rejected(self, cpu_ramp):
        other = Testcase.single("o", ramp(Resource.CPU, 1.0, 100.0, 2.0))
        with pytest.raises(ValidationError):
            merge(cpu_ramp, other)

    def test_rate_mismatch_rejected(self, cpu_ramp):
        other = Testcase.single("o", ramp(Resource.DISK, 1.0, 100.0, 4.0))
        with pytest.raises(ValidationError):
            merge(cpu_ramp, other)


class TestWithId:
    def test_rename(self, cpu_ramp):
        renamed = with_id(cpu_ramp, "renamed")
        assert renamed.testcase_id == "renamed"
        assert np.array_equal(
            renamed.functions[Resource.CPU].values,
            cpu_ramp.functions[Resource.CPU].values,
        )


class TestRoundtripAfterTransforms:
    def test_transformed_testcases_serialize(self, cpu_ramp):
        for transformed in (
            scale_levels(cpu_ramp, 0.5),
            clip_levels(cpu_ramp, 1.0),
            crop(cpu_ramp, 10.0, 90.0),
            retime(cpu_ramp, 4.0),
        ):
            restored = Testcase.from_text(transformed.to_text())
            assert restored.testcase_id == transformed.testcase_id
            assert np.array_equal(
                restored.functions[Resource.CPU].values,
                transformed.functions[Resource.CPU].values,
            )


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=40)
@given(
    a=st.floats(min_value=0.1, max_value=2.0),
    b=st.floats(min_value=0.1, max_value=2.0),
)
def test_property_scaling_composes(a, b):
    base = Testcase.single("p", ramp(Resource.CPU, 2.0, 50.0, 2.0))
    if 2.0 * a * b > 16.0 or 2.0 * a > 16.0:
        return  # outside the CPU cap; covered by validation tests
    twice = scale_levels(scale_levels(base, a), b, new_id="x")
    once = scale_levels(base, a * b, new_id="x")
    assert np.allclose(
        twice.functions[Resource.CPU].values,
        once.functions[Resource.CPU].values,
    )


@settings(max_examples=40)
@given(
    start_frac=st.floats(min_value=0.0, max_value=0.8),
    width_frac=st.floats(min_value=0.1, max_value=0.2),
)
def test_property_crop_duration(start_frac, width_frac):
    base = Testcase.single("p", ramp(Resource.CPU, 2.0, 100.0, 2.0))
    start = start_frac * 100.0
    end = min(100.0, start + width_frac * 100.0)
    cropped = crop(base, start, end)
    expected = end - start
    # slice_time floors the start sample and ceils the end sample, so the
    # realized window can be up to one sample longer on each side.
    assert cropped.duration == pytest.approx(expected, abs=2.0 / 2.0 + 1e-9)
    # The cropped values are a contiguous slice of the original.
    values = cropped.functions[Resource.CPU].values
    original = base.functions[Resource.CPU].values
    offset = int(np.flatnonzero(np.isclose(original, values[0]))[0])
    assert np.allclose(values, original[offset : offset + len(values)])


@settings(max_examples=30)
@given(ceiling=st.floats(min_value=0.1, max_value=5.0))
def test_property_clip_idempotent(ceiling):
    base = Testcase.single("p", ramp(Resource.CPU, 4.0, 50.0, 2.0))
    once = clip_levels(base, ceiling, new_id="x")
    twice = clip_levels(once, ceiling, new_id="x")
    assert np.array_equal(
        once.functions[Resource.CPU].values,
        twice.functions[Resource.CPU].values,
    )
    assert once.functions[Resource.CPU].max_level() <= ceiling + 1e-12
