"""Tests for the comfort metrics (DiscomfortCDF, f_d, c_p, c_a)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import DiscomfortCDF, DiscomfortObservation
from repro.core.resources import Resource
from repro.errors import InsufficientDataError, ValidationError


def obs(level, censored=False, task="word", shape="ramp", user="u"):
    return DiscomfortObservation(
        level=level, censored=censored, resource=Resource.CPU,
        task=task, user_id=user, shape=shape,
    )


class TestCounts:
    def test_df_ex_counts(self):
        cdf = DiscomfortCDF([obs(1.0), obs(2.0), obs(5.0, censored=True)])
        assert cdf.df_count == 2
        assert cdf.ex_count == 1
        assert cdf.n == 3
        assert cdf.f_d() == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            DiscomfortCDF([])

    def test_repr(self):
        cdf = DiscomfortCDF([obs(1.0)])
        assert "DfCount=1" in repr(cdf)


class TestEvaluate:
    def test_cdf_normalized_by_all_runs(self):
        # 2 reactions at 1.0, 2.0; 2 censored: CDF plateaus at f_d = 0.5.
        cdf = DiscomfortCDF(
            [obs(1.0), obs(2.0), obs(3.0, censored=True), obs(3.0, censored=True)]
        )
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(100.0) == 0.5

    def test_curve_plateaus_at_fd(self):
        cdf = DiscomfortCDF([obs(1.0), obs(2.0), obs(9.0, censored=True)])
        x, f = cdf.curve()
        assert f[-1] == pytest.approx(cdf.f_d())
        assert np.all(np.diff(x) >= 0)

    def test_curve_empty_when_no_reactions(self):
        cdf = DiscomfortCDF([obs(5.0, censored=True)])
        x, f = cdf.curve()
        assert x.size == 0 and f.size == 0


class TestPercentile:
    def test_c05_from_known_distribution(self):
        levels = np.linspace(0.1, 10.0, 100)
        cdf = DiscomfortCDF([obs(l) for l in levels])
        assert cdf.c_percentile(0.05) == pytest.approx(levels[4])

    def test_censoring_raises_when_unreachable(self):
        # Only 10% ever react: c_0.5 is undefined (the '*' case).
        observations = [obs(1.0)] + [obs(5.0, censored=True)] * 9
        cdf = DiscomfortCDF(observations)
        assert cdf.c_percentile(0.05) == 1.0
        with pytest.raises(InsufficientDataError):
            cdf.c_percentile(0.5)

    def test_bad_percentile(self):
        cdf = DiscomfortCDF([obs(1.0)])
        with pytest.raises(ValidationError):
            cdf.c_percentile(0.0)


class TestMean:
    def test_c_a_and_ci(self):
        cdf = DiscomfortCDF([obs(1.0), obs(2.0), obs(3.0)])
        ci = cdf.c_mean_ci()
        assert ci.mean == pytest.approx(2.0)
        assert ci.low < 2.0 < ci.high
        assert cdf.c_a() == pytest.approx(2.0)

    def test_censored_excluded_from_mean(self):
        cdf = DiscomfortCDF([obs(1.0), obs(3.0), obs(100.0, censored=True)])
        assert cdf.c_a() == pytest.approx(2.0)

    def test_star_when_no_reactions(self):
        cdf = DiscomfortCDF([obs(5.0, censored=True)])
        with pytest.raises(InsufficientDataError):
            cdf.c_mean_ci()


class TestCombination:
    def test_merged(self):
        a = DiscomfortCDF([obs(1.0)])
        b = DiscomfortCDF([obs(2.0, censored=True)])
        merged = a.merged(b)
        assert merged.n == 2

    def test_filtered(self):
        cdf = DiscomfortCDF(
            [obs(1.0, task="word"), obs(2.0, task="quake"),
             obs(3.0, task="word", shape="step")]
        )
        assert cdf.filtered(task="word").n == 2
        assert cdf.filtered(task="word", shape="ramp").n == 1
        assert cdf.filtered(resource=Resource.CPU).n == 3

    def test_filtered_to_nothing_raises(self):
        cdf = DiscomfortCDF([obs(1.0, task="word")])
        with pytest.raises(InsufficientDataError):
            cdf.filtered(task="ie")


class TestFromRun:
    def test_from_run_discomfort(self, small_study):
        run = next(r for r in small_study.runs if r.discomforted
                   and any(s != "blank" for s in r.shapes.values()))
        o = DiscomfortObservation.from_run(run)
        assert not o.censored
        assert o.level > 0
        assert o.task == run.context.task

    def test_from_run_exhausted_is_censored(self, small_study):
        run = next(r for r in small_study.runs if r.exhausted
                   and any(s != "blank" for s in r.shapes.values()))
        o = DiscomfortObservation.from_run(run)
        assert o.censored
        assert o.level == run.max_level(o.resource)


@settings(max_examples=40)
@given(
    levels=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                    max_size=150),
    censored=st.lists(st.floats(min_value=0.01, max_value=10.0), max_size=150),
)
def test_property_cdf_invariants(levels, censored):
    observations = [obs(l) for l in levels] + [
        obs(l, censored=True) for l in censored
    ]
    cdf = DiscomfortCDF(observations)
    assert cdf.n == len(observations)
    assert 0.0 < cdf.f_d() <= 1.0
    x, f = cdf.curve()
    # Monotone, capped at f_d, evaluate() consistent with curve.
    assert np.all(np.diff(f) > 0)
    assert f[-1] == pytest.approx(cdf.f_d())
    # evaluate() is the upper envelope of the step curve (ties included).
    for xi in x[:: max(1, len(x) // 10)]:
        expected = sum(1 for l in levels if l <= xi) / cdf.n
        assert cdf.evaluate(xi) == pytest.approx(expected)
    # c_a is within the observed reaction range (ulp slack: np.mean of
    # identical values can differ from max by one rounding step).
    eps = 1e-9 * max(abs(max(levels)), 1.0)
    assert min(levels) - eps <= cdf.c_a() <= max(levels) + eps
