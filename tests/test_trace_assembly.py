"""Trace assembly from hostile, multi-process event logs.

Real logs are damaged in predictable ways — a crashed writer truncates
its last line, a copied log duplicates events, a lost file orphans a
subtree, and logs from N processes arrive in arbitrary order.  Every
test here feeds :mod:`repro.telemetry.traces` one of those shapes and
asserts the assembly both salvages what it can and *says* what it
couldn't.
"""

import json

import pytest

from repro.telemetry import Telemetry, TraceContext, use_telemetry
from repro.telemetry.traces import (
    SpanRecord,
    assemble_traces,
    load_spans,
    render_critical_path,
    render_span_stats,
    render_trace_list,
    render_trace_tree,
    span_name_stats,
    to_chrome_trace,
    write_chrome_trace,
)


def span_line(name, sid, parent, trace, ts, dur, depth=0, outcome="ok",
              **fields):
    """One span event exactly as the tracer serializes it."""
    return json.dumps(
        {
            "event": "span",
            "ts": ts,
            "fields": {
                "span": name, "id": sid, "parent": parent, "trace": trace,
                "depth": depth, "duration_s": dur, "outcome": outcome,
                **fields,
            },
        },
        sort_keys=True,
    )


def write_log(path, *lines, newline_at_end=True):
    text = "\n".join(lines)
    path.write_text(text + ("\n" if newline_at_end else ""))
    return path


@pytest.fixture
def three_process_logs(tmp_path):
    """A driver, a worker, and a server log forming one trace.

    Driver root ``d:1`` (0..10s) has a local child ``d:2`` plus two
    cross-process children: worker root ``w:1`` and server root
    ``s:1``, which has its own child ``s:2``.
    """
    driver = write_log(
        tmp_path / "driver.jsonl",
        span_line("child", "d:2", "d:1", "d:1", 6.0, 2.0, depth=1),
        span_line("root", "d:1", None, "d:1", 10.0, 10.0),
    )
    worker = write_log(
        tmp_path / "worker.jsonl",
        span_line("work", "w:1", "d:1", "d:1", 9.0, 6.0),
    )
    server = write_log(
        tmp_path / "server.jsonl",
        span_line("inner", "s:2", "s:1", "d:1", 4.0, 1.0, depth=1),
        span_line("serve", "s:1", "d:1", "d:1", 5.0, 3.0),
    )
    return driver, worker, server


class TestHostileLoading:
    def test_truncated_final_line_is_skipped_and_reported(self, tmp_path):
        log = write_log(
            tmp_path / "a.jsonl",
            span_line("ok", "p:1", None, "p:1", 1.0, 1.0),
            '{"event": "span", "ts": 2.0, "fi',
            newline_at_end=False,
        )
        records, problems = load_spans([log])
        assert [r.span_id for r in records] == ["p:1"]
        assert len(problems) == 1
        assert "line 2" in problems[0] and "skipped" in problems[0]

    def test_duplicated_span_events_keep_the_first(self, tmp_path):
        line = span_line("dup", "p:1", None, "p:1", 1.0, 1.0)
        log_a = write_log(tmp_path / "a.jsonl", line)
        log_b = write_log(tmp_path / "b.jsonl", line)
        records, problems = load_spans([log_a, log_b])
        assert len(records) == 1
        assert records[0].source == str(log_a)
        (problem,) = problems
        assert "duplicate span id 'p:1'" in problem
        assert str(log_a) in problem and str(log_b) in problem

    def test_missing_file_degrades_to_a_problem(self, tmp_path):
        records, problems = load_spans([tmp_path / "nope.jsonl"])
        assert records == []
        assert len(problems) == 1 and "nope.jsonl" in problems[0]

    def test_span_without_an_id_is_reported(self, tmp_path):
        log = write_log(
            tmp_path / "a.jsonl",
            json.dumps({"event": "span", "ts": 1.0,
                        "fields": {"span": "anon", "duration_s": 1.0}}),
        )
        records, problems = load_spans([log])
        assert records == []
        assert "without an id" in problems[0] and "anon" in problems[0]

    def test_non_span_events_are_ignored(self, tmp_path):
        log = write_log(
            tmp_path / "a.jsonl",
            json.dumps({"event": "study.complete", "ts": 1.0,
                        "fields": {"runs": 5}}),
            span_line("ok", "p:1", None, "p:1", 2.0, 1.0),
        )
        records, problems = load_spans([log])
        assert problems == []
        assert [r.name for r in records] == ["ok"]


class TestAssembly:
    def test_three_processes_merge_in_any_order(self, three_process_logs):
        driver, worker, server = three_process_logs
        orders = [
            (driver, worker, server),
            (server, driver, worker),
            (worker, server, driver),
        ]
        shapes = []
        for order in orders:
            records, problems = load_spans(order)
            traces, assembly_problems = assemble_traces(records)
            assert problems == [] and assembly_problems == []
            (trace,) = traces
            shapes.append(
                (
                    trace.trace_id,
                    [r.span_id for r in trace.spans],
                    {r.span_id: [c.span_id for c in trace.children(r.span_id)]
                     for r in trace.spans},
                )
            )
        # Input file order cannot leak into the assembled shape.
        assert shapes[0] == shapes[1] == shapes[2]
        trace_id, chronological, children = shapes[0]
        assert trace_id == "d:1"
        assert chronological == ["d:1", "s:1", "s:2", "w:1", "d:2"]
        assert children["d:1"] == ["s:1", "w:1", "d:2"]
        assert children["s:1"] == ["s:2"]

    def test_trace_properties(self, three_process_logs):
        records, _ = load_spans(three_process_logs)
        (trace,), _ = assemble_traces(records)
        assert trace.root.span_id == "d:1"
        assert trace.processes == ("d", "s", "w")
        assert trace.start == 0.0 and trace.end == 10.0
        assert trace.duration_s == 10.0
        assert len(trace) == 5

    def test_orphan_is_adopted_as_flagged_root(self, tmp_path):
        log = write_log(
            tmp_path / "a.jsonl",
            span_line("root", "p:1", None, "p:1", 5.0, 5.0),
            # Parent q:9's log was lost; trace id still says p:1.
            span_line("lost-subtree", "q:1", "q:9", "p:1", 3.0, 1.0),
        )
        records, _ = load_spans([log])
        (trace,), problems = assemble_traces(records)
        assert trace.orphans == ("q:1",)
        assert {r.span_id for r in trace.roots} == {"p:1", "q:1"}
        (problem,) = problems
        assert "missing parent 'q:9'" in problem
        assert "adopted as a root" in problem

    def test_legacy_records_resolve_trace_via_parent_chain(self, tmp_path):
        """Pre-tracing span events had no ``trace`` field; they group
        under their topmost recovered ancestor."""
        log = write_log(
            tmp_path / "a.jsonl",
            span_line("root", "p:1", None, None, 5.0, 5.0),
            span_line("mid", "p:2", "p:1", None, 4.0, 3.0, depth=1),
            span_line("leaf", "p:3", "p:2", None, 3.0, 1.0, depth=2),
        )
        records, _ = load_spans([log])
        traces, problems = assemble_traces(records)
        assert problems == []
        (trace,) = traces
        assert trace.trace_id == "p:1"
        assert len(trace) == 3

    def test_unrelated_traces_stay_separate(self, tmp_path):
        log = write_log(
            tmp_path / "a.jsonl",
            span_line("a", "p:1", None, "p:1", 1.0, 1.0),
            span_line("b", "p:2", None, "p:2", 2.0, 1.0),
            span_line("b-child", "p:3", "p:2", "p:2", 1.9, 0.5, depth=1),
        )
        records, _ = load_spans([log])
        traces, _ = assemble_traces(records)
        # Largest first.
        assert [t.trace_id for t in traces] == ["p:2", "p:1"]
        assert [len(t) for t in traces] == [2, 1]


class TestCriticalPath:
    @pytest.fixture
    def tree(self, tmp_path):
        log = write_log(
            tmp_path / "a.jsonl",
            span_line("root", "p:1", None, "p:1", 10.0, 10.0),
            span_line("fast", "p:2", "p:1", "p:1", 4.0, 3.0, depth=1),
            span_line("slow", "p:3", "p:1", "p:1", 10.0, 6.0, depth=1),
            span_line("slow-leaf", "q:1", "p:3", "p:1", 9.0, 2.0),
        )
        records, _ = load_spans([log])
        (trace,), _ = assemble_traces(records)
        return trace

    def test_greedy_longest_child_walk(self, tree):
        assert [r.span_id for r in tree.critical_path()] == [
            "p:1", "p:3", "q:1",
        ]

    def test_self_time_subtracts_children(self, tree):
        assert tree.self_time("p:1") == pytest.approx(1.0)  # 10 - (3 + 6)
        assert tree.self_time("p:3") == pytest.approx(4.0)  # 6 - 2
        assert tree.self_time("q:1") == pytest.approx(2.0)  # leaf

    def test_self_time_floors_at_zero_for_parallel_children(self, tmp_path):
        """Concurrent shard workers sum past their parent's wall time."""
        log = write_log(
            tmp_path / "a.jsonl",
            span_line("fan", "p:1", None, "p:1", 4.0, 4.0),
            span_line("w0", "a:1", "p:1", "p:1", 3.9, 3.5),
            span_line("w1", "b:1", "p:1", "p:1", 3.8, 3.5),
        )
        records, _ = load_spans([log])
        (trace,), _ = assemble_traces(records)
        assert trace.self_time("p:1") == 0.0


class TestStatsAndRendering:
    def test_span_name_stats(self, three_process_logs):
        records, _ = load_spans(three_process_logs)
        stats = span_name_stats(records)
        assert stats["root"]["count"] == 1
        assert stats["root"]["total_s"] == pytest.approx(10.0)
        assert stats["serve"]["min_s"] == stats["serve"]["max_s"] == 3.0

    def test_stats_count_errors(self):
        records = [
            SpanRecord("s", "p:1", None, "p:1", 1.0, 1.0, "ok", 0),
            SpanRecord("s", "p:2", None, "p:2", 2.0, 3.0, "error:IOError", 0),
        ]
        stats = span_name_stats(records)
        assert stats["s"]["count"] == 2
        assert stats["s"]["errors"] == 1
        assert stats["s"]["mean_s"] == pytest.approx(2.0)

    def test_renderers_smoke(self, three_process_logs):
        records, _ = load_spans(three_process_logs)
        traces, _ = assemble_traces(records)
        (trace,) = traces
        listing = render_trace_list(traces)
        assert "d:1" in listing and "root" in listing
        tree = render_trace_tree(trace)
        assert tree.count("- ") == 5
        assert "3 process(es)" in tree
        path = render_critical_path(trace)
        assert "100.0%" in path
        stats = render_span_stats(records)
        assert "serve" in stats

    def test_tree_marks_errors_and_adopted_roots(self, tmp_path):
        log = write_log(
            tmp_path / "a.jsonl",
            span_line("root", "p:1", None, "p:1", 2.0, 2.0),
            span_line("boom", "p:2", "p:1", "p:1", 1.5, 0.5,
                      outcome="error:ValueError"),
            span_line("stray", "q:1", "q:9", "p:1", 1.0, 0.5),
        )
        records, _ = load_spans([log])
        (trace,), _ = assemble_traces(records)
        tree = render_trace_tree(trace)
        assert "!error:ValueError" in tree
        assert "(adopted root)" in tree


class TestChromeExport:
    def test_round_trip_through_json(self, three_process_logs, tmp_path):
        records, _ = load_spans(three_process_logs)
        traces, _ = assemble_traces(records)
        out = tmp_path / "chrome.json"
        write_chrome_trace(traces, out)
        chrome = json.loads(out.read_text())
        events = chrome["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        # One process_name per contributing process, one X per span.
        assert sorted(m["args"]["name"] for m in meta) == ["d", "s", "w"]
        assert len(spans) == 5
        # Timestamps are microseconds from the earliest start.
        root = next(e for e in spans if e["args"]["id"] == "d:1")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(10e6)
        serve = next(e for e in spans if e["args"]["id"] == "s:1")
        assert serve["ts"] == pytest.approx(2e6)
        # Parent/trace survive as args; pids map spans to processes.
        assert serve["args"]["parent"] == "d:1"
        assert serve["args"]["trace"] == "d:1"
        pid_names = {m["pid"]: m["args"]["name"] for m in meta}
        assert pid_names[serve["pid"]] == "s"

    def test_annotations_survive_as_args(self, tmp_path):
        log = write_log(
            tmp_path / "a.jsonl",
            span_line("s", "p:1", None, "p:1", 1.0, 1.0, shard=3, runs=64),
        )
        records, _ = load_spans([log])
        traces, _ = assemble_traces(records)
        (span,) = [
            e for e in to_chrome_trace(traces)["traceEvents"]
            if e["ph"] == "X"
        ]
        assert span["args"]["shard"] == 3
        assert span["args"]["runs"] == 64

    def test_empty_input(self):
        chrome = to_chrome_trace([])
        assert chrome["traceEvents"] == []


class TestLiveHubs:
    def test_two_hub_propagation_assembles_one_trace(self, tmp_path):
        """The real tracer + TraceContext wire format, across two hubs
        standing in for two processes."""
        log_a, log_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        hub_a = Telemetry.to_path(log_a, tracer_guid="procA")
        with use_telemetry(hub_a):
            with hub_a.tracer.span("driver") as span:
                wire = span.context.to_wire()
        hub_b = Telemetry.to_path(log_b, tracer_guid="procB")
        with use_telemetry(hub_b):
            with hub_b.tracer.span(
                "worker", parent_context=TraceContext.from_wire(wire)
            ):
                pass
        records, problems = load_spans([log_b, log_a])
        traces, assembly_problems = assemble_traces(records)
        assert problems == [] and assembly_problems == []
        (trace,) = traces
        assert len(trace.processes) == 2
        worker = next(r for r in trace.spans if r.name == "worker")
        assert worker.parent_id == trace.root.span_id
