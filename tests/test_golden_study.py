"""Golden regression fixture for the canonical seed-2004 study.

``tests/golden/controlled_study_seed2004.sha256`` pins the SHA-256 of
the canonical study's serialized records (the exact bytes ``ResultStore``
would hold).  Any engine, model, or serialization edit that shifts even
one byte of paper-calibrated output fails here loudly instead of
silently drifting the reproduced figures.

If a change is *meant* to alter study output, regenerate the pin::

    PYTHONPATH=src:tests python -c "
    from shardcheck import study_digest
    from repro.study import ControlledStudyConfig, run_controlled_study
    print(study_digest(run_controlled_study(ControlledStudyConfig())))"

and say so in the commit message.
"""

from pathlib import Path

import pytest
from shardcheck import study_digest

from repro.study import ControlledStudyConfig, run_controlled_study
from repro.study.engine import SESSION_ENGINES

GOLDEN = Path(__file__).parent / "golden" / "controlled_study_seed2004.sha256"


def test_canonical_study_matches_golden(controlled_study):
    expected = GOLDEN.read_text().split()[0]
    assert study_digest(controlled_study) == expected, (
        "canonical seed-2004 study output drifted from the golden pin; "
        "if intentional, regenerate tests/golden/ (see module docstring)"
    )


@pytest.mark.parametrize("engine", sorted(SESSION_ENGINES))
def test_every_registered_engine_matches_golden(engine):
    """One pin, every engine: byte-identity is the engines' contract, so
    any engine registered in SESSION_ENGINES must reproduce the exact
    golden bytes — a new engine cannot land without passing through
    here."""
    result = run_controlled_study(ControlledStudyConfig(engine=engine))
    expected = GOLDEN.read_text().split()[0]
    assert study_digest(result) == expected, (
        f"engine {engine!r} diverged from the golden seed-2004 pin"
    )


def test_golden_pin_well_formed():
    digest, *annotation = GOLDEN.read_text().split()
    assert len(digest) == 64 and int(digest, 16) >= 0
    assert "seed=2004" in " ".join(annotation)
