"""Tests for the skill-level factor analysis (Figure 17)."""

import numpy as np
import pytest

from repro.analysis.factors import skill_level_differences, skill_table
from repro.core.feedback import DiscomfortEvent, RunOutcome
from repro.core.resources import Resource
from repro.core.run import RunContext, TestcaseRun


def synthetic_run(user_id, rating, level, task="quake", resource=Resource.CPU):
    """A discomfort run with a known rating and reaction level."""
    return TestcaseRun(
        run_id=f"{user_id}-{task}-{resource.value}-{level:.3f}",
        testcase_id="tc",
        context=RunContext(
            user_id=user_id,
            task=task,
            extra={
                "rating_pc": rating,
                "rating_windows": rating,
                f"rating_{task}": rating,
            },
        ),
        outcome=RunOutcome.DISCOMFORT,
        end_offset=60.0,
        testcase_duration=120.0,
        shapes={resource: "ramp"},
        levels_at_end={resource: level},
        last_values={resource: (level,)},
        feedback=DiscomfortEvent(offset=60.0, levels={resource: level}),
    )


def build_runs(power_mean, typical_mean, n=20, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    runs = []
    for i in range(n):
        runs.append(
            synthetic_run(
                f"p{i}", "power", power_mean + rng.normal(0, spread)
            )
        )
        runs.append(
            synthetic_run(
                f"t{i}", "typical", typical_mean + rng.normal(0, spread)
            )
        )
    return runs


class TestSyntheticGroups:
    def test_detects_known_difference(self):
        runs = build_runs(power_mean=0.5, typical_mean=0.8)
        diffs = skill_level_differences(runs, tasks=("quake",))
        quake_cpu = [
            d for d in diffs
            if d.task == "quake" and d.resource is Resource.CPU
        ]
        assert quake_cpu
        best = quake_cpu[0]
        assert best.p_value < 0.001
        assert best.skilled_less_tolerant
        assert best.diff == pytest.approx(0.3, abs=0.1)

    def test_no_false_positive_on_identical_groups(self):
        runs = build_runs(power_mean=0.7, typical_mean=0.7, spread=0.2, seed=3)
        diffs = skill_level_differences(runs, tasks=("quake",), alpha=0.01)
        assert all(d.p_value >= 0.01 for d in diffs) or not diffs

    def test_sorted_by_significance(self):
        runs = build_runs(0.5, 0.9)
        diffs = skill_level_differences(runs, tasks=("quake",))
        p_values = [d.p_value for d in diffs]
        assert p_values == sorted(p_values)

    def test_insufficient_groups_skipped(self):
        runs = [synthetic_run("a", "power", 0.5)]
        assert skill_level_differences(runs, tasks=("quake",)) == []

    def test_describe_and_table(self):
        runs = build_runs(0.5, 0.8)
        diffs = skill_level_differences(runs, tasks=("quake",))
        text = skill_table(diffs).render()
        assert "quake" in text and "cpu" in text
        assert "p" in text
        assert "vs" in diffs[0].describe()


class TestOnStudyData:
    def test_study_factor_analysis_runs(self, study_runs):
        diffs = skill_level_differences(study_runs, significant_only=False)
        assert diffs  # tests exist even if few reach significance at n=33
        for d in diffs:
            assert d.category in ("pc", "windows", d.task)

    def test_quake_cpu_direction_on_study(self, study_runs):
        """Power users tolerate less CPU contention in Quake (Fig 17's
        headline effect), at least directionally."""
        diffs = skill_level_differences(study_runs, significant_only=False)
        quake_cpu = [
            d for d in diffs
            if d.task == "quake"
            and d.resource is Resource.CPU
            and d.category == "quake"
            and d.group_high.value == "power"
        ]
        assert quake_cpu
        assert quake_cpu[0].test.diff > -0.05  # not inverted
