"""Shared fixtures.

The controlled study takes a few seconds, so one canonical execution is
session-scoped and shared by every analysis/report/integration test; tests
that need different parameters run their own small studies.
"""

from __future__ import annotations

import pytest

from repro.apps import get_task
from repro.machine import MachineSpec, SimulatedMachine
from repro.study import ControlledStudyConfig, run_controlled_study
from repro.users import (
    BehaviorParams,
    make_user,
    paper_calibrated_table,
    sample_population,
)

#: Canonical seed for the shared study; chosen once, never tuned per test.
STUDY_SEED = 2004


@pytest.fixture(scope="session")
def controlled_study():
    """The full 33-user controlled study, shared across the session."""
    return run_controlled_study(ControlledStudyConfig(seed=STUDY_SEED))


@pytest.fixture(scope="session")
def study_runs(controlled_study):
    return list(controlled_study.runs)


@pytest.fixture(scope="session")
def small_study():
    """A quick 6-user study for tests that only need plumbing."""
    return run_controlled_study(ControlledStudyConfig(n_users=6, seed=99))


@pytest.fixture()
def machine():
    return SimulatedMachine(MachineSpec.dell_gx270())


@pytest.fixture()
def tolerance_table():
    return paper_calibrated_table()


@pytest.fixture()
def behavior_params():
    return BehaviorParams()


@pytest.fixture()
def population():
    return sample_population(10, seed=5)


@pytest.fixture()
def one_user(population, tolerance_table):
    return make_user(population[0], tolerance_table, seed=7)


@pytest.fixture()
def word_task():
    return get_task("word")


@pytest.fixture()
def quake_task():
    return get_task("quake")
