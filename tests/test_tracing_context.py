"""Tracer context semantics: contextvars nesting, ids, propagation.

The regression this file exists for: the tracer's span stack used to be
``threading.local``, and the asyncio server backend serves *every*
connection from one event loop thread — two requests interleaving at an
await point would push onto one shared stack and record each other as
parents.  ``ContextVar`` state is copied per task, so each coroutine
sees only its own ancestry; ``test_interleaved_tasks_keep_their_own_
ancestry`` fails against the thread-local implementation and passes
against the contextvars one.
"""

import asyncio
import threading

import pytest

from repro.telemetry import Telemetry, TraceContext, process_guid
from repro.telemetry.events import EventLog, MemorySink
from repro.telemetry.tracing import Tracer


def make_tracer(guid=None):
    sink = MemorySink()
    return Tracer(EventLog(sink), guid=guid), sink


def span_events(sink):
    return [e.fields for e in sink.events if e.name == "span"]


def by_name(sink):
    return {e["span"]: e for e in span_events(sink)}


class TestAsyncInterleaving:
    def test_interleaved_tasks_keep_their_own_ancestry(self):
        """Two concurrent tasks, both inside open spans at the same
        moment, must each parent their inner span to their *own* outer
        span — the asyncio-backend mis-nesting regression."""
        tracer, sink = make_tracer()

        async def handler(name, opened, release):
            with tracer.span(f"outer-{name}"):
                opened.set()
                await release.wait()
                with tracer.span(f"inner-{name}"):
                    pass

        async def main():
            opened_a, opened_b = asyncio.Event(), asyncio.Event()
            release = asyncio.Event()
            task_a = asyncio.create_task(handler("a", opened_a, release))
            task_b = asyncio.create_task(handler("b", opened_b, release))
            # Wait until BOTH outer spans are open concurrently, then
            # let the inner spans race.
            await opened_a.wait()
            await opened_b.wait()
            release.set()
            await task_a
            await task_b

        asyncio.run(main())
        events = by_name(sink)
        assert events["inner-a"]["parent"] == events["outer-a"]["id"]
        assert events["inner-b"]["parent"] == events["outer-b"]["id"]
        assert events["inner-a"]["trace"] == events["outer-a"]["id"]
        assert events["inner-b"]["trace"] == events["outer-b"]["id"]
        assert events["outer-a"]["trace"] != events["outer-b"]["trace"]

    def test_task_sees_span_open_at_spawn_as_parent(self):
        """A task created inside a span inherits that ancestry (context
        is copied at task creation)."""
        tracer, sink = make_tracer()

        async def child():
            with tracer.span("child"):
                pass

        async def main():
            with tracer.span("parent"):
                await asyncio.create_task(child())

        asyncio.run(main())
        events = by_name(sink)
        assert events["child"]["parent"] == events["parent"]["id"]
        assert events["child"]["depth"] == 1

    def test_task_cannot_corrupt_siblings_stack(self):
        """A child task's push/pop is invisible to its sibling."""
        tracer, sink = make_tracer()

        async def noisy():
            with tracer.span("noisy"):
                await asyncio.sleep(0)

        async def quiet(started):
            await started.wait()
            assert tracer.active is None
            with tracer.span("quiet"):
                pass

        async def main():
            started = asyncio.Event()
            task = asyncio.create_task(noisy())
            started.set()
            await asyncio.gather(task, quiet(started))

        asyncio.run(main())
        assert by_name(sink)["quiet"]["parent"] is None


class TestThreadIsolation:
    def test_threads_do_not_share_a_stack(self):
        tracer, sink = make_tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(f"outer-{name}"):
                barrier.wait(timeout=10)  # both outers open concurrently
                with tracer.span(f"inner-{name}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = by_name(sink)
        assert events["inner-a"]["parent"] == events["outer-a"]["id"]
        assert events["inner-b"]["parent"] == events["outer-b"]["id"]


class TestSpanIds:
    def test_ids_are_guid_namespaced_and_unique_across_tracers(self):
        """Two hubs in one process draw from one sequence: no id can
        repeat even across tracer lifetimes."""
        tracer_a, sink_a = make_tracer()
        tracer_b, sink_b = make_tracer()
        for tracer in (tracer_a, tracer_b, tracer_a):
            with tracer.span("s"):
                pass
        ids = [e["id"] for e in span_events(sink_a) + span_events(sink_b)]
        assert len(set(ids)) == 3
        guid = process_guid()
        assert all(i.startswith(f"{guid}:") for i in ids)

    def test_process_guid_is_stable_and_short(self):
        assert process_guid() == process_guid()
        assert len(process_guid()) == 8
        int(process_guid(), 16)  # hex

    def test_guid_override_salts_the_namespace(self):
        tracer, sink = make_tracer(guid="host.s3")
        with tracer.span("s"):
            pass
        (event,) = span_events(sink)
        assert event["id"].startswith("host.s3:")

    def test_depth_and_trace_recorded(self):
        tracer, sink = make_tracer()
        with tracer.span("a") as a:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        events = by_name(sink)
        assert [events[n]["depth"] for n in "abc"] == [0, 1, 2]
        assert {events[n]["trace"] for n in "abc"} == {a.span_id}

    def test_outcome_records_exception_type(self):
        tracer, sink = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (event,) = span_events(sink)
        assert event["outcome"] == "error:ValueError"


class TestTraceContext:
    def test_wire_round_trip(self):
        context = TraceContext("t:1", "s:2")
        assert context.to_wire() == {"trace": "t:1", "span": "s:2"}
        assert TraceContext.from_wire(context.to_wire()) == context

    @pytest.mark.parametrize(
        "data",
        [
            None,
            "t:1",
            42,
            {},
            {"trace": "t:1"},
            {"span": "s:2"},
            {"trace": "", "span": "s:2"},
            {"trace": "t:1", "span": ""},
            {"trace": 1, "span": "s:2"},
            {"trace": "t:1", "span": None},
            ["trace", "span"],
        ],
    )
    def test_malformed_wire_data_degrades_to_none(self, data):
        assert TraceContext.from_wire(data) is None

    def test_remote_parent_grafts_a_root_span(self):
        tracer, sink = make_tracer()
        remote = TraceContext("far:1", "far:2")
        with tracer.span("local", parent_context=remote):
            pass
        (event,) = span_events(sink)
        assert event["parent"] == "far:2"
        assert event["trace"] == "far:1"
        assert event["depth"] == 0

    def test_local_parent_wins_over_remote_context(self):
        """A remote parent cannot splice into the middle of an open
        local stack — it only applies to root spans."""
        tracer, sink = make_tracer()
        remote = TraceContext("far:1", "far:2")
        with tracer.span("outer") as outer:
            with tracer.span("inner", parent_context=remote):
                pass
        events = by_name(sink)
        assert events["inner"]["parent"] == outer.span_id
        assert events["inner"]["trace"] == outer.trace_id

    def test_span_context_property_matches_event(self):
        tracer, sink = make_tracer()
        with tracer.span("s") as span:
            context = span.context
        (event,) = span_events(sink)
        assert context.span_id == event["id"]
        assert context.trace_id == event["trace"]

    def test_current_context_tracks_the_active_span(self):
        tracer, _ = make_tracer()
        assert tracer.current_context() is None
        with tracer.span("s") as span:
            assert tracer.current_context() == span.context
        assert tracer.current_context() is None


class TestTelemetryFacade:
    def test_disabled_hub_span_has_no_context(self):
        telemetry = Telemetry.disabled()
        with telemetry.span("s") as span:
            assert span.context is None

    def test_enabled_hub_forwards_parent_context(self):
        telemetry = Telemetry.in_memory()
        remote = TraceContext("far:1", "far:2")
        with telemetry.span("s", parent_context=remote):
            pass
        (event,) = [
            e.fields for e in telemetry.events.sink.events if e.name == "span"
        ]
        assert event["parent"] == "far:2"
