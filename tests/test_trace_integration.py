"""End-to-end distributed tracing across six real processes.

The acceptance shape for the tracing subsystem: one root span in the
driver encloses a 4-shard study (four worker processes, each with its
own event log) and a register + sync against a ``uucs serve``
subprocess over TCP.  Assembling all six logs must yield ONE connected
trace whose spans cover all six processes, with a critical path from
the root and a Chrome export that round-trips.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.client.client import ClientConfig, UUCSClient
from repro.cli import main as cli_main
from repro.server.server import TCPClientTransport
from repro.study import ControlledStudyConfig, run_sharded_study
from repro.telemetry import Telemetry, use_telemetry
from repro.telemetry.traces import (
    assemble_traces,
    load_spans,
    to_chrome_trace,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def assembled(tmp_path_factory):
    """Run the six-process workload once; yield (trace, records, logs)."""
    tmp = tmp_path_factory.mktemp("trace-e2e")
    driver_log = tmp / "driver.jsonl"
    server_log = tmp / "server.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--root", str(tmp / "srv"), "--library", "1",
         "--port", "0", "--timeout", "60",
         "--telemetry", str(server_log)],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    try:
        port = None
        for line in proc.stdout:
            if line.startswith("UUCS server on "):
                port = int(line.split()[3].rpartition(":")[2])
                break
        assert port, "server never printed its address"
        with use_telemetry(Telemetry.to_path(driver_log)) as telemetry:
            with telemetry.tracer.span("e2e"):
                run_sharded_study(
                    ControlledStudyConfig(n_users=4, seed=2004),
                    shards=4,
                    worker_telemetry=tmp / "driver",
                )
                transport = TCPClientTransport("127.0.0.1", port)
                try:
                    client = UUCSClient(
                        ClientConfig(root=tmp / "client", user_id="e2e"),
                        transport, seed=0,
                    )
                    client.register({"test": "e2e"})
                    client.hot_sync()
                finally:
                    transport.close()
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    logs = [driver_log, *sorted(tmp.glob("driver.shard*.jsonl")), server_log]
    assert len(logs) == 6
    records, problems = load_spans(logs)
    traces, assembly_problems = assemble_traces(records)
    assert problems == []
    assert assembly_problems == []
    assert len(traces) == 1, [t.trace_id for t in traces]
    return traces[0], records, logs


class TestSixProcessTrace:
    def test_one_connected_trace_spans_six_processes(self, assembled):
        trace, _, _ = assembled
        assert len(trace.processes) == 6
        assert trace.roots == (trace.root,)
        assert trace.orphans == ()
        assert trace.root.name == "e2e"

    def test_every_leg_is_present_and_linked(self, assembled):
        trace, _, _ = assembled
        names = {r.name for r in trace.spans}
        assert {"e2e", "study.sharded", "study.shard_worker",
                "client.register", "hot_sync", "server.request"} <= names
        sharded = next(r for r in trace.spans if r.name == "study.sharded")
        workers = trace.children(sharded.span_id)
        assert len(workers) == 4
        assert {w.name for w in workers} == {"study.shard_worker"}
        # Four distinct worker processes, none the driver's.
        assert len({w.process for w in workers}) == 4
        assert trace.root.process not in {w.process for w in workers}
        # Both request spans crossed the wire into the server process.
        requests = [r for r in trace.spans if r.name == "server.request"]
        assert len(requests) == 2
        (server_process,) = {r.process for r in requests}
        parents = {trace.get(r.parent_id).name for r in requests}
        assert parents == {"client.register", "hot_sync"}
        assert all(
            trace.get(r.parent_id).process == trace.root.process
            for r in requests
        )
        assert server_process != trace.root.process

    def test_client_spans_record_the_echoed_server_span(self, assembled):
        trace, _, _ = assembled
        for name in ("client.register", "hot_sync"):
            span = next(r for r in trace.spans if r.name == name)
            echoed = span.fields.get("server_span")
            child_ids = {c.span_id for c in trace.children(span.span_id)}
            assert echoed in child_ids

    def test_critical_path_starts_at_the_root(self, assembled):
        trace, _, _ = assembled
        path = trace.critical_path()
        assert path[0] is trace.root
        assert len(path) >= 2
        assert all(
            path[i + 1].parent_id == path[i].span_id
            for i in range(len(path) - 1)
        )

    def test_chrome_export_round_trips(self, assembled):
        trace, records, _ = assembled
        chrome = json.loads(json.dumps(to_chrome_trace([trace])))
        spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert len(spans) == len(records)
        assert len(meta) == 6
        assert {m["args"]["name"] for m in meta} == set(trace.processes)

    def test_uucs_trace_cli_renders_the_assembly(self, assembled, capsys):
        trace, _, logs = assembled
        chrome_out = logs[0].parent / "cli-chrome.json"
        code = cli_main(
            ["trace", *map(str, logs), "--trace", trace.trace_id,
             "--chrome", str(chrome_out)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.err == ""
        assert f"Critical path of trace {trace.trace_id}" in captured.out
        assert "study.shard_worker" in captured.out
        assert chrome_out.exists()
        assert json.loads(chrome_out.read_text())["traceEvents"]

    def test_uucs_trace_cli_rejects_unknown_trace_id(self, assembled, capsys):
        _, _, logs = assembled
        code = cli_main(["trace", *map(str, logs), "--trace", "nope:1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "no trace 'nope:1'" in captured.err
