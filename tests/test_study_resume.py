"""Tests for study checkpoint/resume: manifest lifecycle, salvage, and
the golden resume soak.

The contract (ISSUE: fault-tolerant sharded studies): a study
interrupted at any point and resumed must produce output byte-identical
to a run where nothing happened — including the canonical seed-2004
study, whose golden SHA-256 pin the soak test at the bottom re-checks
after killing workers and the driver under two fixed chaos seeds.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.errors import StudyError
from repro.faults import ShardFaultPlan
from repro.stores import ResultStore
from repro.study import (
    ControlledStudyConfig,
    StudyCheckpoint,
    SupervisorPolicy,
    run_controlled_study,
    run_sharded_study,
)
from shardcheck import (
    assert_resume_equivalence,
    serialized_records,
    study_digest,
)

SMALL = ControlledStudyConfig(n_users=2, seed=5, tasks=("word",))

GOLDEN = Path(__file__).parent / "golden" / "controlled_study_seed2004.sha256"


def fast_policy(**overrides):
    kwargs = dict(
        max_attempts=6, base_delay=0.01, max_delay=0.05, quarantine=False
    )
    kwargs.update(overrides)
    return SupervisorPolicy(**kwargs)


def manifest_records(checkpoint):
    return [
        json.loads(line)
        for line in checkpoint.path.read_text().splitlines()
        if line.strip()
    ]


def run_checkpointed(store, config=SMALL, shards=2, **kwargs):
    kwargs.setdefault("supervisor", fast_policy())
    return run_sharded_study(
        config, shards=shards, checkpoint=StudyCheckpoint(store), **kwargs
    )


class TestManifestLifecycle:
    def test_completed_run_writes_verifiable_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_checkpointed(store)
        baseline = b"".join(serialized_records(run_controlled_study(SMALL)))
        assert store.path.read_bytes() == baseline

        checkpoint = StudyCheckpoint(store)
        records = manifest_records(checkpoint)
        assert [r["kind"] for r in records] == [
            "header", "shard", "shard", "complete",
        ]
        header = records[0]
        assert header["seed"] == SMALL.seed
        assert header["n_users"] == SMALL.n_users
        assert header["base_offset"] == 0
        offset = 0
        for shard_record in records[1:3]:
            assert shard_record["status"] == "done"
            assert shard_record["offset_start"] == offset
            span = store.read_span(
                shard_record["offset_start"], shard_record["offset_end"]
            )
            assert hashlib.sha256(span).hexdigest() == shard_record["sha256"]
            offset = shard_record["offset_end"]
        assert offset == len(baseline)
        assert records[-1]["runs"] == len(result.runs)
        assert records[-1]["quarantined"] == []
        assert not checkpoint.unfinished()

    def test_fresh_start_refuses_unfinished_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(store, chaos=ShardFaultPlan(sigint=1.0))
        assert StudyCheckpoint(store).unfinished()
        with pytest.raises(StudyError, match="resume"):
            run_checkpointed(store)

    def test_completed_manifest_superseded_by_next_study(self, tmp_path):
        store = ResultStore(tmp_path)
        run_checkpointed(store)
        first_size = store.size()
        run_checkpointed(store)  # append-only store: a second full study
        assert store.size() == 2 * first_size
        records = manifest_records(StudyCheckpoint(store))
        # Only the new study's records survive, anchored past the old bytes.
        assert [r["kind"] for r in records] == [
            "header", "shard", "shard", "complete",
        ]
        assert records[0]["base_offset"] == first_size

    def test_resume_rejects_mismatched_config(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(store, chaos=ShardFaultPlan(sigint=1.0))
        other = ControlledStudyConfig(n_users=2, seed=6, tasks=("word",))
        with pytest.raises(StudyError, match="seed"):
            run_checkpointed(store, config=other, resume=True)

    def test_resume_without_manifest_errors(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(StudyError, match="manifest"):
            run_checkpointed(store, resume=True)

    def test_resume_rejects_unknown_manifest_version(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(store, chaos=ShardFaultPlan(sigint=1.0))
        checkpoint = StudyCheckpoint(store)
        records = manifest_records(checkpoint)
        records[0]["version"] = 99
        checkpoint.path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
        with pytest.raises(StudyError, match="version"):
            run_checkpointed(store, resume=True)

    def test_corrupt_committed_manifest_line_is_fatal(self, tmp_path):
        # A torn *tail* is forgiven; garbage on an fsynced interior line
        # is not — it means the manifest was hand-edited or damaged.
        store = ResultStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(store, chaos=ShardFaultPlan(sigint=1.0))
        checkpoint = StudyCheckpoint(store)
        lines = checkpoint.path.read_text().splitlines(keepends=True)
        checkpoint.path.write_text(
            lines[0] + "not json\n" + "".join(lines[1:]), encoding="utf-8"
        )
        with pytest.raises(StudyError, match="corrupt"):
            run_checkpointed(store, resume=True)


class TestResumeSalvage:
    def test_interrupt_resume_byte_identical(self):
        assert_resume_equivalence(SMALL, shards=2)

    def test_interrupt_resume_under_kill_chaos(self):
        plan = ShardFaultPlan(
            kill=0.5, kill_after_runs=2, sigint=1.0, seed=3
        )
        assert_resume_equivalence(SMALL, shards=2, chaos=plan)

    def test_interrupt_resume_under_chaos_with_batch_engine(self):
        """Checkpoint byte-spans and resume byte-identity are
        engine-independent: the cell-batched engine rides the same
        run_user_range contract, so a chaos-interrupted batch study
        resumes to the exact bytes of an uninterrupted scalar run."""
        batch_small = ControlledStudyConfig(
            n_users=SMALL.n_users, seed=SMALL.seed, tasks=SMALL.tasks,
            engine="batch",
        )
        plan = ShardFaultPlan(
            kill=0.5, kill_after_runs=2, sigint=1.0, seed=3
        )
        digest = assert_resume_equivalence(
            batch_small, shards=2, chaos=plan
        )
        # Same bytes the *analytic* engine produces for this config:
        # the resume contract holds across engines, not merely within.
        assert digest == study_digest(
            run_controlled_study(
                ControlledStudyConfig(
                    n_users=SMALL.n_users, seed=SMALL.seed,
                    tasks=SMALL.tasks, engine="analytic",
                )
            )
        )

    def test_torn_manifest_tail_tolerated(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(store, chaos=ShardFaultPlan(sigint=1.0))
        checkpoint = StudyCheckpoint(store)
        with checkpoint.path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind":"shard","status":"do')  # crashed mid-append
        resumed = run_checkpointed(store, resume=True)
        baseline = run_controlled_study(SMALL)
        assert serialized_records(resumed) == serialized_records(baseline)
        assert store.path.read_bytes() == b"".join(
            serialized_records(baseline)
        )

    def test_corrupted_store_span_recomputed(self, tmp_path):
        # Complete a checkpointed study, then damage shard 1's bytes and
        # strip the completion record: resume must distrust the
        # manifest, salvage only the shard that still verifies, and
        # recompute the rest back to byte-identity.
        store = ResultStore(tmp_path)
        run_checkpointed(store)
        checkpoint = StudyCheckpoint(store)
        records = manifest_records(checkpoint)
        shard1 = records[2]
        blob = bytearray(store.path.read_bytes())
        flip = shard1["offset_start"]
        blob[flip] = blob[flip] ^ 0x01
        store.path.write_bytes(bytes(blob))
        checkpoint.path.write_text(
            "".join(
                json.dumps(r, separators=(",", ":"), sort_keys=True) + "\n"
                for r in records[:-1]  # drop "complete": study looks crashed
            ),
            encoding="utf-8",
        )
        resumed = run_checkpointed(store, resume=True)
        baseline = run_controlled_study(SMALL)
        assert serialized_records(resumed) == serialized_records(baseline)
        assert store.path.read_bytes() == b"".join(
            serialized_records(baseline)
        )
        stamped = manifest_records(StudyCheckpoint(store))
        resume_record = next(r for r in stamped if r["kind"] == "resume")
        assert resume_record["salvaged_shards"] == 1  # shard 1 was distrusted

    def test_resume_of_complete_study_is_lossless(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_checkpointed(store)
        blob = store.path.read_bytes()
        resumed = run_checkpointed(store, resume=True)
        assert serialized_records(resumed) == serialized_records(first)
        assert store.path.read_bytes() == blob
        resume_record = next(
            r
            for r in manifest_records(StudyCheckpoint(store))
            if r["kind"] == "resume"
        )
        assert resume_record["salvaged_shards"] == 2
        assert resume_record["salvaged_runs"] == len(first.runs)


class TestGoldenResumeSoak:
    """Satellite: kill workers AND the driver mid-study under two fixed
    chaos seeds (the CI ``UUCS_CHAOS_SEED`` matrix), resume, and prove
    the canonical golden pin still matches."""

    @pytest.mark.parametrize("chaos_seed", [42, 20040601])
    def test_resume_under_kill_chaos_matches_golden_pin(
        self, tmp_path, chaos_seed
    ):
        pin = GOLDEN.read_text().split()[0]
        config = ControlledStudyConfig(seed=2004)
        plan = ShardFaultPlan(
            kill=0.5, kill_after_runs=3, sigint=1.0, seed=chaos_seed
        )
        policy = fast_policy(max_attempts=8)
        store = ResultStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_sharded_study(
                config, shards=4, supervisor=policy,
                checkpoint=StudyCheckpoint(store), chaos=plan,
            )
        resumed = run_sharded_study(
            config, shards=4, supervisor=policy,
            checkpoint=StudyCheckpoint(store), resume=True,
        )
        assert study_digest(resumed) == pin
        assert hashlib.sha256(store.path.read_bytes()).hexdigest() == pin
