"""Tests for the UUCS client (stores, registration, hot sync, modes)."""

import math

import pytest

from repro.apps import get_task
from repro.client import ClientConfig, PoissonArrivals, UUCSClient
from repro.core.resources import Resource
from repro.errors import ProtocolError, StoreError, ValidationError
from repro.machine import SimulatedMachine
from repro.server import InProcessTransport, UUCSServer
from repro.study.testcases import task_testcases
from repro.users import make_user, sample_population


@pytest.fixture()
def server(tmp_path):
    server = UUCSServer(tmp_path / "server", seed=1, sync_batch=4)
    server.add_testcases(task_testcases("ie"))
    return server


@pytest.fixture()
def client(tmp_path, server):
    return UUCSClient(
        ClientConfig(root=tmp_path / "client", user_id="u1",
                     mean_execution_interval=200.0, sync_want=4),
        InProcessTransport(server),
        seed=5,
    )


@pytest.fixture()
def feedback():
    return make_user(sample_population(1, seed=3)[0], seed=9)


class TestPoissonArrivals:
    def test_mean_interval(self):
        arrivals = PoissonArrivals(10.0, seed=1)
        delays = [arrivals.next_delay() for _ in range(3000)]
        assert sum(delays) / len(delays) == pytest.approx(10.0, rel=0.1)

    def test_arrivals_until_sorted_within_horizon(self):
        arrivals = PoissonArrivals(5.0, seed=2)
        times = arrivals.arrivals_until(100.0)
        assert times == sorted(times)
        assert all(0 < t < 100.0 for t in times)

    def test_choose_uniform(self):
        arrivals = PoissonArrivals(1.0, seed=3)
        picks = {arrivals.choose(["a", "b", "c"]) for _ in range(100)}
        assert picks == {"a", "b", "c"}

    def test_validation(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(0.0)
        arrivals = PoissonArrivals(1.0)
        with pytest.raises(ValidationError):
            arrivals.choose([])
        with pytest.raises(ValidationError):
            arrivals.arrivals_until(-1.0)


class TestRegistration:
    def test_register_persists_identity(self, tmp_path, server):
        config = ClientConfig(root=tmp_path / "c", user_id="u")
        first = UUCSClient(config, InProcessTransport(server))
        client_id = first.register({"os": "xp"})
        # A new client instance on the same directory keeps the GUID.
        second = UUCSClient(config, InProcessTransport(server))
        assert second.client_id == client_id
        assert second.registered

    def test_register_idempotent(self, client):
        a = client.register({})
        b = client.register({})
        assert a == b

    def test_offline_client_cannot_register(self, tmp_path):
        offline = UUCSClient(ClientConfig(root=tmp_path / "c", user_id="u"))
        with pytest.raises(ProtocolError):
            offline.register({})

    def test_privacy_snapshot_withheld(self, tmp_path, server):
        config = ClientConfig(root=tmp_path / "c", user_id="u",
                              share_snapshot=False)
        client = UUCSClient(config, InProcessTransport(server))
        client_id = client.register({"secret": "data"})
        record = server.registry.lookup(client_id)
        assert "secret" not in record.snapshot


class TestHotSync:
    def test_downloads_grow(self, client):
        client.register({})
        first, _ = client.hot_sync()
        second, _ = client.hot_sync()
        assert first == 4 and second == 4
        assert len(client.testcases) == 8

    def test_sync_before_register_rejected(self, client):
        with pytest.raises(ProtocolError):
            client.hot_sync()

    def test_results_uploaded_and_drained(self, client, feedback):
        client.register({})
        client.hot_sync()
        client.hot_sync()
        machine = SimulatedMachine()
        model = machine.interactivity_model(get_task("ie"))
        client.run_script(["ie-cpu-ramp"], feedback, model, task="ie")
        assert len(client.results) == 1
        _, uploaded = client.hot_sync()
        assert uploaded == 1
        assert len(client.results) == 0

    def test_privacy_load_traces_withheld(self, tmp_path, server, feedback):
        config = ClientConfig(root=tmp_path / "c", user_id="u",
                              share_load_traces=False)
        client = UUCSClient(config, InProcessTransport(server), seed=1)
        client.register({})
        client.hot_sync()
        client.run_script(["ie-blank-1"], feedback, task="ie")
        client.hot_sync()
        uploaded = list(server.results)[-1]
        assert uploaded.load_trace == {}


class TestExecution:
    def test_script_mode_order(self, client, feedback):
        client.register({})
        client.hot_sync()
        client.hot_sync()
        script = ["ie-blank-1", "ie-blank-2"]
        runs = client.run_script(script, feedback, task="ie")
        assert [r.testcase_id for r in runs] == script

    def test_script_missing_testcase(self, client, feedback):
        client.register({})
        with pytest.raises(StoreError):
            client.run_script(["nope"], feedback)

    def test_random_mode_respects_duration(self, client, feedback):
        client.register({})
        client.hot_sync()
        client.hot_sync()
        start = client.clock
        runs = client.run_random(3000.0, feedback, task="ie")
        assert client.clock - start == pytest.approx(3000.0, abs=1e-6)
        for run in runs:
            assert run.context.task == "ie"
            assert run.context.client_id == client.client_id

    def test_random_mode_needs_testcases(self, client, feedback):
        client.register({})
        with pytest.raises(StoreError):
            client.run_random(100.0, feedback)

    def test_clock_advances_with_runs(self, client, feedback):
        client.register({})
        client.hot_sync()
        client.hot_sync()
        before = client.clock
        client.run_script(["ie-blank-1"], feedback, task="ie")
        assert client.clock > before

    def test_clock_cannot_rewind(self, client):
        with pytest.raises(ValidationError):
            client.advance_clock(-1.0)

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            ClientConfig(root=tmp_path, sync_want=0)
        with pytest.raises(ValidationError):
            ClientConfig(root=tmp_path, mean_execution_interval=0.0)
