"""Tests for user profiles and population sampling."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.users import (
    RATING_CATEGORIES,
    SkillLevel,
    make_user,
    sample_population,
)
from repro.users.population import sample_profile
from repro.users.profile import UserProfile


class TestProfile:
    def test_defaults_to_typical(self):
        profile = UserProfile(user_id="u")
        assert profile.rating("quake") is SkillLevel.TYPICAL

    def test_rating_for_task_falls_back_to_pc(self):
        profile = UserProfile(user_id="u", ratings={"pc": SkillLevel.POWER})
        assert profile.rating_for_task("unknown-task") is SkillLevel.POWER
        assert profile.rating_for_task("quake") is SkillLevel.TYPICAL

    def test_questionnaire_covers_all_categories(self):
        q = UserProfile(user_id="u").questionnaire()
        assert set(q) == set(RATING_CATEGORIES)
        assert all(v in ("power", "typical", "beginner") for v in q.values())

    def test_validation(self):
        with pytest.raises(ValidationError):
            UserProfile(user_id="")
        with pytest.raises(ValidationError):
            UserProfile(user_id="u", tolerance_factor=0.0)
        with pytest.raises(ValidationError):
            UserProfile(user_id="u", reaction_delay_mean=-1.0)
        with pytest.raises(ValidationError):
            UserProfile(user_id="u", ratings={"vim": SkillLevel.POWER})
        with pytest.raises(ValidationError):
            UserProfile(user_id="u").rating("emacs")

    def test_skill_level_parse(self):
        assert SkillLevel.parse(" POWER ") is SkillLevel.POWER
        with pytest.raises(ValidationError):
            SkillLevel.parse("guru")


class TestPopulation:
    def test_deterministic(self):
        a = sample_population(10, seed=1)
        b = sample_population(10, seed=1)
        assert a == b

    def test_unique_ids(self):
        pop = sample_population(33, seed=2)
        assert len({p.user_id for p in pop}) == 33

    def test_engineering_pool_leans_skilled(self):
        pop = sample_population(500, seed=3)
        power_pc = sum(p.rating("pc") is SkillLevel.POWER for p in pop)
        beginner_pc = sum(p.rating("pc") is SkillLevel.BEGINNER for p in pop)
        assert power_pc > beginner_pc

    def test_quake_ratings_spread(self):
        pop = sample_population(500, seed=4)
        beginners = sum(p.rating("quake") is SkillLevel.BEGINNER for p in pop)
        assert beginners > 50  # plenty of non-gamers

    def test_ratings_correlated_within_person(self):
        pop = sample_population(500, seed=5)
        same = sum(p.rating("windows") is p.rating("pc") for p in pop)
        assert same / len(pop) > 0.5

    def test_tolerance_factor_centered_near_one(self):
        pop = sample_population(500, seed=6)
        factors = np.array([p.tolerance_factor for p in pop])
        assert np.median(factors) == pytest.approx(1.0, abs=0.1)
        assert factors.std() < 0.3

    def test_sample_profile_single(self):
        profile = sample_profile("solo", seed=7)
        assert profile.user_id == "solo"
        assert 1.5 <= profile.reaction_delay_mean <= 5.0


class TestMakeUser:
    def test_defaults_to_paper_table(self, population):
        import math

        from repro.core.resources import Resource

        user = make_user(population[0], seed=1)
        # quake/cpu is a reactive cell: thresholds mostly finite.
        draws = [
            user.threshold_for("quake", Resource.CPU, "ramp") for _ in range(50)
        ]
        finite = [d for d in draws if not math.isinf(d)]
        assert len(finite) > 30
        assert all(d > 0 for d in finite)
