"""Tests for the text-file testcase and result stores."""

import pytest

from repro.core.exercise import constant, ramp
from repro.core.feedback import RunOutcome
from repro.core.resources import Resource
from repro.core.run import RunContext, TestcaseRun
from repro.core.testcase import Testcase
from repro.errors import StoreError
from repro.stores import ResultStore, TestcaseStore


def tc(tcid="t1", level=1.0):
    return Testcase.single(tcid, constant(Resource.CPU, level, 10.0))


def run_record(run_id="r1"):
    return TestcaseRun(
        run_id=run_id,
        testcase_id="t1",
        context=RunContext(user_id="u"),
        outcome=RunOutcome.EXHAUSTED,
        end_offset=10.0,
        testcase_duration=10.0,
        shapes={Resource.CPU: "constant"},
    )


class TestTestcaseStore:
    def test_add_get_roundtrip(self, tmp_path):
        store = TestcaseStore(tmp_path / "tcs")
        store.add(tc())
        assert store.get("t1").testcase_id == "t1"
        assert "t1" in store
        assert len(store) == 1

    def test_files_are_plain_text(self, tmp_path):
        store = TestcaseStore(tmp_path)
        store.add(tc())
        text = (tmp_path / "t1.testcase").read_text()
        assert text.startswith("UUCS-TESTCASE 1")

    def test_ids_sorted(self, tmp_path):
        store = TestcaseStore(tmp_path)
        store.add_all([tc("b"), tc("a"), tc("c")])
        assert store.ids() == ["a", "b", "c"]

    def test_iteration(self, tmp_path):
        store = TestcaseStore(tmp_path)
        store.add_all([tc("a"), tc("b")])
        assert [t.testcase_id for t in store] == ["a", "b"]

    def test_missing_raises(self, tmp_path):
        store = TestcaseStore(tmp_path)
        with pytest.raises(StoreError):
            store.get("nope")

    def test_overwrite_control(self, tmp_path):
        store = TestcaseStore(tmp_path)
        store.add(tc("x", 1.0))
        store.add(tc("x", 2.0))  # default overwrite
        assert store.get("x").functions[Resource.CPU].max_level() == 2.0
        with pytest.raises(StoreError):
            store.add(tc("x"), overwrite=False)

    def test_illegal_ids_rejected(self, tmp_path):
        store = TestcaseStore(tmp_path)
        for bad in ("", "../evil", ".hidden", "a/b"):
            with pytest.raises(StoreError):
                store.get(bad)

    def test_corrupt_file_surfaces_as_store_error(self, tmp_path):
        store = TestcaseStore(tmp_path)
        (tmp_path / "bad.testcase").write_text("garbage")
        with pytest.raises(StoreError):
            store.get("bad")

    def test_remove(self, tmp_path):
        store = TestcaseStore(tmp_path)
        store.add(tc())
        store.remove("t1")
        assert len(store) == 0
        with pytest.raises(StoreError):
            store.remove("t1")


class TestResultStore:
    def test_append_and_iterate(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(run_record("a"))
        store.append(run_record("b"))
        assert [r.run_id for r in store] == ["a", "b"]
        assert len(store) == 2
        assert store.run_ids() == {"a", "b"}

    def test_empty_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert list(store) == []
        assert len(store) == 0

    def test_extend_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.extend([run_record("a"), run_record("b")]) == 2

    def test_drain_empties(self, tmp_path):
        store = ResultStore(tmp_path)
        store.extend([run_record("a"), run_record("b")])
        drained = store.drain()
        assert len(drained) == 2
        assert len(store) == 0

    def test_blank_lines_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(run_record("a"))
        with store.path.open("a") as fh:
            fh.write("\n\n")
        store.append(run_record("b"))
        assert len(store) == 2

    def test_corruption_reported_with_line(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(run_record("a"))
        with store.path.open("a") as fh:
            fh.write("{broken\n")
        with pytest.raises(StoreError, match="results.jsonl:2"):
            list(store)

    def test_runs_roundtrip_exactly(self, tmp_path):
        store = ResultStore(tmp_path)
        original = run_record()
        store.append(original)
        assert next(iter(store)) == original


class TestResultStoreBatches:
    def test_extend_batches_counts_and_order(self, tmp_path):
        store = ResultStore(tmp_path)
        batches = [[run_record("a"), run_record("b")], [], [run_record("c")]]
        assert store.extend_batches(batches) == 3
        assert [r.run_id for r in store] == ["a", "b", "c"]

    def test_extend_batches_matches_extend_bytes(self, tmp_path):
        runs = [run_record(f"r{i}") for i in range(6)]
        flat = ResultStore(tmp_path / "flat")
        flat.extend(runs)
        batched = ResultStore(tmp_path / "batched")
        batched.extend_batches([runs[:2], runs[2:5], runs[5:]])
        assert flat.path.read_bytes() == batched.path.read_bytes()

    def test_extend_batches_into_empty_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.extend_batches([]) == 0
        assert len(store) == 0
        assert store.run_ids() == set()

    def test_extend_batches_dedupe(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(run_record("a"))
        wrote = store.extend_batches(
            [[run_record("a"), run_record("b")]], dedupe=True
        )
        assert wrote == 1
        assert [r.run_id for r in store] == ["a", "b"]

    def test_extend_batches_chunked_write_is_byte_identical(
        self, tmp_path, monkeypatch
    ):
        # A batch bigger than the write chunk must stream through in
        # pieces (bounded transient memory at fleet scale) yet produce
        # the same bytes, count, and order as a single-buffer write.
        runs = [run_record(f"c{i}") for i in range(10)]
        flat = ResultStore(tmp_path / "flat")
        flat.extend(runs)
        chunked = ResultStore(tmp_path / "chunked")
        monkeypatch.setattr(ResultStore, "_WRITE_CHUNK_LINES", 3)
        assert chunked.extend_batches([runs]) == 10
        assert flat.path.read_bytes() == chunked.path.read_bytes()
        assert [r.run_id for r in chunked] == [f"c{i}" for i in range(10)]


class TestResultStoreCrashTail:
    def crashed(self, tmp_path):
        """A store whose writer died mid-record."""
        store = ResultStore(tmp_path)
        store.extend([run_record("a"), run_record("b")])
        with store.path.open("a") as fh:
            fh.write('{"run_id": "half-written')  # no newline: uncommitted
        return store

    def test_partial_tail_ignored_on_read(self, tmp_path):
        self.crashed(tmp_path)
        reopened = ResultStore(tmp_path)
        assert [r.run_id for r in reopened] == ["a", "b"]

    def test_reopen_and_reindex_after_crash(self, tmp_path):
        self.crashed(tmp_path)
        reopened = ResultStore(tmp_path)
        assert reopened.run_ids() == {"a", "b"}
        assert "half-written" not in reopened

    def test_append_after_crash_repairs_tail(self, tmp_path):
        store = self.crashed(tmp_path)
        store.append(run_record("c"))
        assert [r.run_id for r in ResultStore(tmp_path)] == ["a", "b", "c"]
        assert b"half-written" not in store.path.read_bytes()

    def test_extend_batches_after_crash(self, tmp_path):
        self.crashed(tmp_path)
        reopened = ResultStore(tmp_path)
        assert reopened.extend_batches([[run_record("c"), run_record("d")]]) == 2
        assert [r.run_id for r in reopened] == ["a", "b", "c", "d"]

    def test_repair_tail_reports(self, tmp_path):
        store = self.crashed(tmp_path)
        assert store.repair_tail() is True
        assert store.repair_tail() is False

    def test_repair_tail_noop_cases(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.repair_tail() is False  # no file yet
        store.path.write_text("")
        assert store.repair_tail() is False  # empty file

    def test_repair_tail_whole_file_is_partial(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path.write_text('{"no-newline')
        assert store.repair_tail() is True
        assert store.path.read_bytes() == b""
        assert list(store) == []

    def test_terminated_corruption_still_raises(self, tmp_path):
        # Leniency is only for the crash-truncated tail; a corrupt line
        # that *was* committed (newline-terminated) stays a hard error.
        store = ResultStore(tmp_path)
        store.append(run_record("a"))
        with store.path.open("a") as fh:
            fh.write("{broken\n")
        with pytest.raises(StoreError, match="results.jsonl:2"):
            list(store)
