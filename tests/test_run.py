"""Tests for run records (feedback, outcomes, serialization)."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feedback import DiscomfortEvent, RunOutcome
from repro.core.resources import Resource
from repro.core.run import RunContext, TestcaseRun
from repro.errors import SerializationError, ValidationError


def make_run(outcome=RunOutcome.DISCOMFORT, offset=45.0, **kwargs):
    feedback = None
    if outcome is RunOutcome.DISCOMFORT:
        feedback = DiscomfortEvent(
            offset=offset, levels={Resource.CPU: 1.5}, source="simulated"
        )
    defaults = dict(
        run_id="r1",
        testcase_id="tc1",
        context=RunContext(user_id="u1", task="word", started_at=100.0),
        outcome=outcome,
        end_offset=offset,
        testcase_duration=120.0,
        shapes={Resource.CPU: "ramp"},
        levels_at_end={Resource.CPU: 1.5},
        last_values={Resource.CPU: (1.1, 1.2, 1.3, 1.4, 1.5)},
        feedback=feedback,
        load_trace={"slowdown": (1.0, 1.1, 1.2)},
        load_trace_rate=1.0,
    )
    defaults.update(kwargs)
    return TestcaseRun(**defaults)


class TestOutcome:
    def test_parse(self):
        assert RunOutcome.parse("DISCOMFORT") is RunOutcome.DISCOMFORT
        with pytest.raises(ValidationError):
            RunOutcome.parse("bogus")


class TestDiscomfortEvent:
    def test_negative_offset_rejected(self):
        with pytest.raises(ValidationError):
            DiscomfortEvent(offset=-1.0)

    def test_level_for(self):
        event = DiscomfortEvent(offset=1.0, levels={Resource.CPU: 2.0})
        assert event.level_for(Resource.CPU) == 2.0
        assert event.level_for(Resource.DISK) == 0.0


class TestRunRecord:
    def test_discomfort_accessors(self):
        run = make_run()
        assert run.discomforted and not run.exhausted
        assert run.discomfort_level(Resource.CPU) == 1.5
        assert run.max_level(Resource.CPU) == 1.5

    def test_exhausted_has_no_discomfort_level(self):
        run = make_run(outcome=RunOutcome.EXHAUSTED, offset=120.0)
        assert run.exhausted
        with pytest.raises(ValidationError):
            run.discomfort_level(Resource.CPU)

    def test_feedback_outcome_consistency_enforced(self):
        with pytest.raises(ValidationError):
            make_run(outcome=RunOutcome.EXHAUSTED, offset=120.0,
                     feedback=DiscomfortEvent(offset=1.0))
        with pytest.raises(ValidationError):
            make_run(feedback=None)

    def test_end_offset_bounds(self):
        with pytest.raises(ValidationError):
            make_run(end_offset=-1.0)
        with pytest.raises(ValidationError):
            make_run(end_offset=500.0)

    def test_max_level_uses_last_values(self):
        run = make_run(levels_at_end={Resource.CPU: 1.0},
                       last_values={Resource.CPU: (0.5, 2.5)})
        assert run.max_level(Resource.CPU) == 2.5


class TestSerialization:
    def test_json_roundtrip(self):
        run = make_run()
        restored = TestcaseRun.from_json(run.to_json())
        assert restored == run

    def test_exhausted_roundtrip(self):
        run = make_run(outcome=RunOutcome.EXHAUSTED, offset=120.0)
        restored = TestcaseRun.from_json(run.to_json())
        assert restored == run
        assert restored.feedback is None

    def test_context_roundtrip_with_extras(self):
        context = RunContext(
            user_id="u", task="quake", client_id="c", machine_id="m",
            started_at=5.0, extra={"rating_pc": "power"},
        )
        assert RunContext.from_dict(context.to_dict()) == context

    def test_bad_json(self):
        with pytest.raises(SerializationError):
            TestcaseRun.from_json("not json")

    def test_missing_fields(self):
        with pytest.raises(SerializationError):
            TestcaseRun.from_dict({"run_id": "x"})

    def test_new_run_id_unique(self):
        ids = {TestcaseRun.new_run_id() for _ in range(100)}
        assert len(ids) == 100

    def test_new_run_id_seeded(self):
        import numpy as np

        a = TestcaseRun.new_run_id(np.random.default_rng(1))
        b = TestcaseRun.new_run_id(np.random.default_rng(1))
        assert a == b and len(a) == 32


def _canonical(run: TestcaseRun) -> str:
    return json.dumps(run.to_dict(), sort_keys=True)


class TestCanonicalJson:
    """``to_json``'s fragment-assembled fast path must stay byte-identical
    to ``json.dumps(to_dict(), sort_keys=True)`` — the form every digest,
    golden pin, and store payload is defined against."""

    def test_matches_dumps_both_outcomes(self):
        for run in (
            make_run(),
            make_run(outcome=RunOutcome.EXHAUSTED, offset=120.0),
        ):
            assert run.to_json() == _canonical(run)

    def test_adversarial_strings_and_numbers(self):
        context = RunContext(
            user_id='müller "the\\usr"\n\t\x01',
            task="quake",
            client_id="日本語-client   ",
            machine_id="m\x7f",
            started_at=-0.0,
            extra={"k\n": 'v"\\', "ключ": "значение", "": "blank"},
        )
        run = make_run(
            context=context,
            levels_at_end={Resource.CPU: math.inf, Resource.MEMORY: math.nan},
            last_values={Resource.CPU: (1.0, -math.inf, 5e-324)},
            load_trace={"slowdown": (math.nan, 2.0), "x y": (0.0, -0.0)},
            load_trace_rate=4,  # ints must render as ints, same as dumps
        )
        assert run.to_json() == _canonical(run)

    def test_shared_mappings_across_records(self):
        # The batch engine shares trace/shape mappings between records;
        # fragment-cache hits must reproduce the exact bytes for every
        # record that shares the object.
        shapes = {Resource.CPU: "step"}
        trace = {"slowdown": tuple(float(i) / 7 for i in range(50))}
        runs = [
            make_run(run_id=f"s{i}", shapes=shapes, load_trace=trace)
            for i in range(3)
        ]
        for run in runs:
            assert run.to_json() == _canonical(run)

    def test_cache_reset_at_cap(self, monkeypatch):
        from repro.core import run as run_mod

        monkeypatch.setattr(run_mod, "_FRAGMENT_CACHE_MAX", 4)
        monkeypatch.setattr(run_mod, "_STR_CACHE_MAX", 4)
        for i in range(20):
            run = make_run(
                run_id=f"r{i}",
                testcase_id=f"tc{i}",
                load_trace={"slowdown": (float(i),)},
            )
            assert run.to_json() == _canonical(run)
        assert len(run_mod._fragment_cache) <= 4
        assert len(run_mod._str_cache) <= 4

    def test_roundtrips_through_from_json(self):
        run = make_run()
        assert TestcaseRun.from_json(run.to_json()) == run


@settings(max_examples=60, deadline=None)
@given(
    user_id=st.text(max_size=20),
    task=st.text(max_size=8),
    extra=st.dictionaries(
        st.text(max_size=8), st.text(max_size=8), max_size=3
    ),
    started=st.floats(allow_nan=False),
    offset=st.floats(min_value=0.0, max_value=120.0),
    level=st.floats(),
    trace=st.lists(st.floats(), max_size=6),
    rate=st.one_of(
        st.floats(), st.integers(min_value=-(10**12), max_value=10**12)
    ),
    source=st.text(max_size=8),
)
def test_property_to_json_matches_dumps(
    user_id, task, extra, started, offset, level, trace, rate, source
):
    run = TestcaseRun(
        run_id="cj",
        testcase_id="tc",
        context=RunContext(
            user_id=user_id, task=task, started_at=started, extra=extra
        ),
        outcome=RunOutcome.DISCOMFORT,
        end_offset=offset,
        testcase_duration=120.0,
        shapes={Resource.CPU: "ramp"},
        levels_at_end={Resource.CPU: level},
        last_values={Resource.CPU: tuple(trace)},
        feedback=DiscomfortEvent(
            offset=offset, levels={Resource.CPU: level}, source=source
        ),
        load_trace={"slowdown": tuple(trace)},
        load_trace_rate=rate,
    )
    assert run.to_json() == _canonical(run)


@settings(max_examples=40)
@given(
    offset=st.floats(min_value=0.0, max_value=120.0),
    level=st.floats(min_value=0.0, max_value=10.0),
    task=st.sampled_from(["word", "powerpoint", "ie", "quake", ""]),
    source=st.sampled_from(["simulated", "noise", "hotkey"]),
)
def test_property_roundtrip(offset, level, task, source):
    run = TestcaseRun(
        run_id="rp",
        testcase_id="tc",
        context=RunContext(user_id="u", task=task),
        outcome=RunOutcome.DISCOMFORT,
        end_offset=offset,
        testcase_duration=120.0,
        shapes={Resource.CPU: "ramp"},
        levels_at_end={Resource.CPU: level},
        last_values={Resource.CPU: (level,)},
        feedback=DiscomfortEvent(offset=offset, levels={Resource.CPU: level},
                                 source=source),
    )
    assert TestcaseRun.from_json(run.to_json()) == run
