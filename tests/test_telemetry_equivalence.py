"""Telemetry must observe, never perturb.

The acceptance bar for the telemetry subsystem: with telemetry enabled,
a controlled-study run and a client/server round-trip produce a
parseable JSON-lines event log and a Prometheus-style exposition with
the advertised families — and with telemetry disabled (the default),
study outputs are *bit-identical* to seed behavior and no log files
appear.
"""

import pytest

from repro.client.client import ClientConfig, UUCSClient
from repro.server.server import TCPServerTransport, UUCSServer
from repro.study import ControlledStudyConfig, run_controlled_study
from repro.study.internet import generate_library
from repro.telemetry import Telemetry, get_telemetry, read_events, use_telemetry
from repro.users.behavior import SimulatedUser
from repro.users.population import sample_profile
from repro.users.tolerance import paper_calibrated_table
from repro.util.rng import derive_rng


def _study_records(n_users=3, seed=99, engine="analytic"):
    result = run_controlled_study(
        ControlledStudyConfig(n_users=n_users, seed=seed, engine=engine)
    )
    return [run.to_dict() for run in result.runs]


class TestBitIdenticalWithTelemetry:
    @pytest.mark.parametrize("engine", ["analytic", "loop"])
    def test_study_identical_on_off(self, tmp_path, engine):
        baseline = _study_records(engine=engine)
        with use_telemetry(Telemetry.to_path(tmp_path / "events.jsonl")):
            instrumented = _study_records(engine=engine)
        assert instrumented == baseline

    def test_disabled_default_creates_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert not get_telemetry().enabled
        _study_records(n_users=1)
        assert list(tmp_path.iterdir()) == [], "telemetry leaked files"


class TestStudyEventLog:
    def test_event_log_parseable_and_complete(self, tmp_path):
        path = tmp_path / "study.jsonl"
        with use_telemetry(Telemetry.to_path(path)) as tel:
            _study_records(n_users=2)
            exposition = tel.metrics.render()
        events = read_events(path)
        names = {event.name for event in events}
        assert "session.run" in names
        assert "study.user_session" in names
        assert "study.complete" in names
        spans = [e for e in events if e.name == "span"]
        assert any(e.fields["span"] == "study.controlled" for e in spans)
        # session outcome counters and at least one latency histogram
        assert "uucs_session_runs_total" in exposition
        assert 'engine="analytic"' in exposition
        assert "uucs_session_duration_seconds_bucket" in exposition
        assert "uucs_session_wall_seconds_sum" in exposition

    def test_session_counts_match_run_counts(self, tmp_path):
        with use_telemetry(Telemetry.to_path(tmp_path / "e.jsonl")) as tel:
            records = _study_records(n_users=2)
            counter = tel.metrics.get("uucs_session_runs_total")
            total = sum(
                counter.value(engine="analytic", outcome=outcome)
                for outcome in ("discomfort", "exhausted", "aborted")
            )
        assert total == len(records)


class TestServerRoundTrip:
    def _round_trip(self, root, telemetry):
        server = UUCSServer(root / "server", seed=5, telemetry=telemetry)
        server.add_testcases(generate_library(6, seed=5))
        rng = derive_rng(11, "telemetry-rt")
        with TCPServerTransport(server) as listener:
            with listener.connect() as transport:
                client = UUCSClient(
                    ClientConfig(root=root / "client", user_id="u1"),
                    transport,
                    seed=rng,
                    telemetry=telemetry,
                )
                client.register({"os": "test"})
                downloaded, _ = client.hot_sync()
                assert downloaded > 0
                profile = sample_profile("u1", rng)
                user = SimulatedUser(
                    profile, paper_calibrated_table(), seed=rng
                )
                runs = client.run_random(4000.0, user)
                client.hot_sync()
        return server, runs

    def test_exposition_and_event_log(self, tmp_path):
        path = tmp_path / "server.jsonl"
        telemetry = Telemetry.to_path(path)
        server, _ = self._round_trip(tmp_path, telemetry)
        exposition = telemetry.metrics.render()
        telemetry.close()

        # server request counters, by message type
        assert 'uucs_server_requests_total{type="register"} 1' in exposition
        assert 'uucs_server_requests_total{type="sync"} 2' in exposition
        # per-message-type latency histogram
        assert 'uucs_server_request_seconds_bucket{type="sync",le="+Inf"} 2' \
            in exposition
        assert "uucs_server_registrations_total 1" in exposition
        assert "uucs_server_testcases_shipped_total" in exposition
        # client-side counters share the same registry
        assert "uucs_client_syncs_total 2" in exposition
        # TCP byte accounting moved real payloads
        read = telemetry.metrics.get("uucs_server_bytes_read_total")
        written = telemetry.metrics.get("uucs_server_bytes_written_total")
        assert read.value() > 0 and written.value() > 0

        events = read_events(path)
        spans = {e.fields["span"] for e in events if e.name == "span"}
        assert "hot_sync" in spans
        assert "client.run_random" in spans
        assert any(e.name == "server.request" for e in events)

    def test_round_trip_identical_without_telemetry(self, tmp_path):
        _, silent = self._round_trip(tmp_path / "off", None)
        telemetry = Telemetry.in_memory()
        _, observed = self._round_trip(tmp_path / "on", telemetry)
        assert [r.to_dict() for r in silent] == [r.to_dict() for r in observed]


class TestThrottleTelemetry:
    def test_ceiling_gauge_and_budget_counters(self):
        from repro.core.resources import Resource
        from repro.throttle.controller import FeedbackController
        from repro.throttle.throttle import Throttle

        telemetry = Telemetry.in_memory()
        controller = FeedbackController(
            Throttle(Resource.CPU), max_level=1.0, backoff=0.5,
            telemetry=telemetry,
        )
        gauge = telemetry.metrics.get("uucs_throttle_ceiling")
        assert gauge.value() == 1.0
        controller.on_discomfort()
        assert gauge.value() == 0.5
        controller.on_comfortable(60.0)
        assert gauge.value() == pytest.approx(0.55)
        assert telemetry.metrics.get(
            "uucs_throttle_discomfort_total"
        ).value() == 1
        assert telemetry.metrics.get(
            "uucs_throttle_budget_spent_total"
        ).value() == pytest.approx(0.5)
        backoffs = [
            e for e in telemetry.events.sink if e.name == "throttle.backoff"
        ]
        assert len(backoffs) == 1
