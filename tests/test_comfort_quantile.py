"""The shared comfort-quantile helper (repro.util.comfort).

One implementation of the paper's ``c_a`` now serves both the analysis
layer (explicit ECDF points) and the streaming telemetry path
(cumulative histogram buckets).  These tests pin the two estimators to
each other, exercise arbitrary ``a``, and keep the historical import
paths alive.
"""

import numpy as np
import pytest

from repro.core.session import DISCOMFORT_LEVEL_BUCKETS
from repro.errors import InsufficientDataError, ValidationError
from repro.util.comfort import (
    c_quantile,
    quantile_from_buckets,
    quantile_from_ecdf,
)


def ecdf_of(samples):
    xs = np.sort(np.asarray(samples, dtype=float))
    f = np.arange(1, xs.size + 1) / xs.size
    return xs, f


def buckets_of(samples, bounds):
    cumulative = [sum(1 for s in samples if s <= b) for b in bounds]
    return list(bounds), cumulative


class TestBucketEstimator:
    def test_interpolates_within_bucket(self):
        # 10 observations <= 1.0, 10 more <= 2.0: the median rank (10)
        # lands exactly on the first bucket's upper edge.
        assert quantile_from_buckets([1.0, 2.0], [10, 20], 20, 0.5) == 1.0
        # Rank 15 sits midway through the second bucket.
        assert quantile_from_buckets([1.0, 2.0], [10, 20], 20, 0.75) == 1.5

    def test_no_observations_is_none(self):
        assert quantile_from_buckets([1.0, 2.0], [0, 0], 0, 0.05) is None

    def test_overflow_clamps_to_last_bound(self):
        # All mass above the highest finite bound: Prometheus convention
        # clamps to it rather than extrapolating.
        assert quantile_from_buckets([1.0, 2.0], [0, 0], 5, 0.5) == 2.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValidationError):
            quantile_from_buckets([1.0], [1], 1, 1.5)

    @pytest.mark.parametrize("a", [0.01, 0.05, 0.25, 0.5, 0.95])
    def test_arbitrary_a_monotone(self, a):
        bounds = list(DISCOMFORT_LEVEL_BUCKETS)
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.05, bounds[-1], size=400)
        bounds, cumulative = buckets_of(samples, bounds)
        lo = quantile_from_buckets(bounds, cumulative, len(samples), a)
        hi = quantile_from_buckets(bounds, cumulative, len(samples), min(1.0, a + 0.04))
        assert lo is not None and hi is not None
        assert lo <= hi


class TestEcdfEstimator:
    def test_exact_on_step_points(self):
        xs, f = ecdf_of([1.0, 2.0, 3.0, 4.0])
        assert quantile_from_ecdf(xs, f, 0.25) == 1.0
        assert quantile_from_ecdf(xs, f, 0.5) == 2.0
        assert quantile_from_ecdf(xs, f, 1.0) == 4.0

    def test_censored_region_raises(self):
        # CDF plateaus at 0.6: the paper's exhausted region.
        xs = np.array([1.0, 2.0])
        f = np.array([0.3, 0.6])
        with pytest.raises(InsufficientDataError):
            quantile_from_ecdf(xs, f, 0.95)

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            quantile_from_ecdf(np.array([]), np.array([]), 0.05)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValidationError):
            quantile_from_ecdf(np.array([1.0]), np.array([1.0]), 0.0)


class TestEstimatorsAgree:
    @pytest.mark.parametrize("a", [0.05, 0.1, 0.5, 0.9])
    def test_bucket_vs_ecdf_within_one_bucket_width(self, a):
        """Both estimators of the same sample agree to bucket resolution."""
        rng = np.random.default_rng(2004)
        bounds = list(DISCOMFORT_LEVEL_BUCKETS)
        samples = np.exp(rng.normal(0.0, 0.6, size=1000))
        samples = samples[samples <= bounds[-1]]
        xs, f = ecdf_of(samples)
        exact = quantile_from_ecdf(xs, f, a)
        b, cum = buckets_of(samples, bounds)
        approx = quantile_from_buckets(b, cum, len(samples), a)
        idx = next(i for i, bound in enumerate(bounds) if exact <= bound)
        width = bounds[idx] - (bounds[idx - 1] if idx else 0.0)
        assert abs(approx - exact) <= width


class TestSnapshotMapping:
    def test_c_quantile_handles_json_round_trip(self):
        # Snapshot bucket mappings may carry string bounds, unordered.
        buckets = {"2.0": 8, "0.5": 2, "1.0": 4}
        assert c_quantile(buckets, 8, 0.25) == pytest.approx(0.5)

    def test_c_quantile_empty_is_none(self):
        assert c_quantile({}, 0) is None
        assert c_quantile({"1.0": 0}, 0) is None


class TestHistoricalImports:
    def test_old_paths_still_resolve(self):
        from repro.telemetry.metrics import (
            quantile_from_buckets as from_metrics,
        )
        from repro.util import c_quantile as from_util
        from repro.util.stats import quantile_from_ecdf as from_stats

        assert from_metrics is quantile_from_buckets
        assert from_stats is quantile_from_ecdf
        assert from_util is c_quantile

    def test_discomfort_cdf_percentile_uses_shared_helper(self):
        from repro.core.metrics import DiscomfortCDF, DiscomfortObservation

        from repro.core.resources import Resource

        cdf = DiscomfortCDF(
            DiscomfortObservation(level=v, censored=False, resource=Resource.CPU)
            for v in (1.0, 2.0, 3.0, 4.0)
        )
        xs, f = cdf.curve()
        assert cdf.c_percentile(0.5) == quantile_from_ecdf(xs, f, 0.5)
