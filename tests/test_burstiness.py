"""Tests for the burstiness (steady vs M/M/1) study extension."""

import numpy as np
import pytest

from repro.core.resources import CONTENTION_LIMITS, Resource
from repro.errors import StudyError
from repro.study import matched_mean_pair, run_burstiness_study


class TestMatchedPair:
    def test_means_match(self):
        steady, bursty = matched_mean_pair("powerpoint", Resource.CPU, 0.6)
        steady_mean = float(steady.functions[Resource.CPU].values.mean())
        bursty_mean = float(bursty.functions[Resource.CPU].values.mean())
        assert steady_mean == pytest.approx(0.6)
        assert bursty_mean == pytest.approx(0.6, rel=0.05)

    def test_bursty_has_higher_peak(self):
        steady, bursty = matched_mean_pair("powerpoint", Resource.CPU, 0.6)
        assert (
            bursty.functions[Resource.CPU].max_level()
            > steady.functions[Resource.CPU].max_level()
        )

    def test_levels_capped(self):
        _, bursty = matched_mean_pair("quake", Resource.CPU, 2.0, seed=3)
        assert (
            bursty.functions[Resource.CPU].max_level()
            <= CONTENTION_LIMITS[Resource.CPU] + 1e-9
        )

    def test_deterministic(self):
        a = matched_mean_pair("ie", Resource.CPU, 0.5, seed=9)[1]
        b = matched_mean_pair("ie", Resource.CPU, 0.5, seed=9)[1]
        assert np.array_equal(
            a.functions[Resource.CPU].values, b.functions[Resource.CPU].values
        )

    def test_validation(self):
        with pytest.raises(StudyError):
            matched_mean_pair("ie", Resource.CPU, 0.0)


class TestBurstinessStudy:
    def test_bursts_hurt_more_at_equal_mean(self):
        result = run_burstiness_study(
            "powerpoint", Resource.CPU, mean_level=0.6, n_users=25, seed=77
        )
        assert result.f_d_bursty > result.f_d_steady
        assert result.burstiness_penalty > 0.2

    def test_run_counts_and_arms(self):
        result = run_burstiness_study(n_users=5, seed=1)
        assert len(result.runs) == 10
        arms = {r.context.extra["arm"] for r in result.runs}
        assert arms == {"steady", "bursty"}

    def test_deterministic(self):
        a = run_burstiness_study(n_users=4, seed=2)
        b = run_burstiness_study(n_users=4, seed=2)
        assert [r.run_id for r in a.runs] == [r.run_id for r in b.runs]

    def test_validation(self):
        with pytest.raises(StudyError):
            run_burstiness_study(n_users=0)
