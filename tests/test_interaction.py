"""Tests for the event-level interaction latency model."""

import numpy as np
import pytest

from repro.apps import get_task
from repro.core.resources import Resource
from repro.errors import ValidationError
from repro.machine import (
    HCI_COMFORT_LIMIT,
    SimulatedMachine,
    simulate_interaction_latencies,
)


def trace_for(task_name, cpu_level, duration=120.0, rate=4.0, seed=1):
    machine = SimulatedMachine()
    model = machine.interactivity_model(get_task(task_name))
    n = int(duration * rate)
    levels = {Resource.CPU: np.full(n, cpu_level)}
    return simulate_interaction_latencies(model, levels, rate, seed=seed)


class TestLatencyModel:
    def test_event_count_matches_grain(self):
        word = trace_for("word", 0.0)   # 0.15 s grain -> ~800 events/120 s
        quake = trace_for("quake", 0.0)  # 0.02 s grain -> ~6000 events
        assert word.n_events == pytest.approx(800, rel=0.2)
        assert quake.n_events == pytest.approx(6000, rel=0.2)

    def test_unloaded_latencies_within_cadence(self):
        trace = trace_for("word", 0.0)
        # Uncontended interactions complete well within their period.
        assert trace.percentile(0.95) < 0.15

    def test_contention_inflates_latency(self):
        idle = trace_for("quake", 0.0)
        loaded = trace_for("quake", 2.0)
        assert loaded.mean() > 2.0 * idle.mean()

    def test_word_unmoved_by_moderate_contention(self):
        idle = trace_for("word", 0.0)
        loaded = trace_for("word", 2.0)
        # Word's demand is tiny: contention 2 leaves its latency alone.
        assert loaded.mean() == pytest.approx(idle.mean(), rel=0.1)

    def test_fraction_over_hci_limits(self):
        loaded = trace_for("quake", 3.0)
        assert 0.0 <= loaded.fraction_over(HCI_COMFORT_LIMIT) <= 1.0

    def test_deterministic(self):
        a = trace_for("ie", 1.0, seed=9)
        b = trace_for("ie", 1.0, seed=9)
        assert np.array_equal(a.latencies, b.latencies)

    def test_times_sorted_within_duration(self):
        trace = trace_for("powerpoint", 1.0)
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times.max() <= 120.0


class TestValidation:
    def test_bad_inputs(self):
        machine = SimulatedMachine()
        model = machine.interactivity_model(get_task("word"))
        with pytest.raises(ValidationError):
            simulate_interaction_latencies(model, {}, 4.0)
        with pytest.raises(ValidationError):
            simulate_interaction_latencies(
                model,
                {Resource.CPU: np.zeros(4), Resource.DISK: np.zeros(5)},
                4.0,
            )
        with pytest.raises(ValidationError):
            simulate_interaction_latencies(
                model, {Resource.CPU: np.zeros(4)}, 0.0
            )

    def test_empty_trace_guards(self):
        from repro.machine.interaction import LatencyTrace

        empty = LatencyTrace(np.empty(0), np.empty(0))
        with pytest.raises(ValidationError):
            empty.mean()
        with pytest.raises(ValidationError):
            empty.percentile(0.5)
