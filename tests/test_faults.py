"""Tests for the resilience layer: retry policy, fault injection, and
seeded fault/no-fault equivalence of the sync pipeline."""

import pytest

from repro.client import ClientConfig, UUCSClient
from repro.errors import ProtocolError, TransportError, ValidationError
from repro.faults import (
    FaultInjectingTransport,
    FaultPlan,
    RetryingTransport,
    RetryPolicy,
)
from repro.server import InProcessTransport, Message, UUCSServer
from repro.study.testcases import task_testcases
from repro.telemetry import Telemetry
from repro.users import make_user, sample_population


class FlakyTransport:
    """Fails the first ``failures`` requests with TransportError."""

    def __init__(self, inner, failures):
        self._inner = inner
        self._remaining = failures
        self.requests = 0

    def request(self, message):
        self.requests += 1
        if self._remaining > 0:
            self._remaining -= 1
            raise TransportError("simulated line drop")
        return self._inner.request(message)


class DeadTransport:
    def request(self, message):
        raise TransportError("nothing out there")


class EchoTransport:
    def request(self, message):
        return Message("pong", {})


def no_sleep(_):
    pass


@pytest.fixture()
def server(tmp_path):
    server = UUCSServer(tmp_path / "server", seed=1)
    server.add_testcases(task_testcases("word"))
    return server


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValidationError):
            RetryPolicy(retry_budget=-1)

    def test_backoff_caps_and_grows(self):
        import numpy as np

        policy = RetryPolicy(
            base_delay=0.1, max_delay=0.4, multiplier=2.0, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_is_seed_deterministic(self):
        import numpy as np

        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        a = [policy.backoff(n, np.random.default_rng(7)) for n in (1, 2)]
        b = [policy.backoff(n, np.random.default_rng(7)) for n in (1, 2)]
        assert a == b
        # Jitter only ever shortens the deterministic backoff.
        assert all(0.05 <= d <= 0.1 for d in a[:1])


class TestRetryingTransport:
    def test_retries_until_success(self):
        flaky = FlakyTransport(EchoTransport(), failures=2)
        transport = RetryingTransport(
            flaky, RetryPolicy(max_attempts=4, base_delay=0.0), seed=1,
            sleep=no_sleep,
        )
        assert transport.request(Message("ping", {})).type == "pong"
        assert flaky.requests == 3
        assert transport.retries == 2
        assert transport.give_ups == 0

    def test_gives_up_after_max_attempts(self):
        transport = RetryingTransport(
            DeadTransport(), RetryPolicy(max_attempts=3, base_delay=0.0),
            seed=1, sleep=no_sleep,
        )
        with pytest.raises(TransportError):
            transport.request(Message("ping", {}))
        assert transport.give_ups == 1
        assert transport.retries == 2  # 3 attempts = 2 retries

    def test_lifetime_retry_budget(self):
        transport = RetryingTransport(
            DeadTransport(),
            RetryPolicy(max_attempts=10, base_delay=0.0, retry_budget=3),
            seed=1, sleep=no_sleep,
        )
        with pytest.raises(TransportError):
            transport.request(Message("ping", {}))
        assert transport.budget_left == 0
        # The next request gets no retries at all: one attempt, then out.
        with pytest.raises(TransportError):
            transport.request(Message("ping", {}))
        assert transport.retries == 3

    def test_deadline_stops_retrying(self):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        def fake_sleep(dt):
            clock["now"] += dt

        transport = RetryingTransport(
            DeadTransport(),
            RetryPolicy(
                max_attempts=100, base_delay=1.0, max_delay=1.0,
                jitter=0.0, deadline=2.5,
            ),
            seed=1, sleep=fake_sleep, clock=fake_clock,
        )
        with pytest.raises(TransportError):
            transport.request(Message("ping", {}))
        # 1s + 1s backoffs fit the 2.5s deadline; the third would not.
        assert transport.retries == 2

    def test_non_transport_errors_pass_through(self):
        class Broken:
            def request(self, message):
                raise ProtocolError("semantically wrong, not transient")

        transport = RetryingTransport(Broken(), seed=1, sleep=no_sleep)
        with pytest.raises(ProtocolError):
            transport.request(Message("ping", {}))
        assert transport.retries == 0

    def test_telemetry_counters_and_events(self):
        telemetry = Telemetry.in_memory()
        flaky = FlakyTransport(EchoTransport(), failures=1)
        transport = RetryingTransport(
            flaky, RetryPolicy(base_delay=0.0), seed=1,
            telemetry=telemetry, sleep=no_sleep,
        )
        transport.request(Message("ping", {}))
        counter = telemetry.metrics.counter(
            "uucs_client_retries_total", labelnames=("type",)
        )
        assert counter.value(type="ping") == 1
        names = [e.name for e in telemetry.events.sink.events]
        assert "client.retry" in names

    def test_give_up_event(self):
        telemetry = Telemetry.in_memory()
        transport = RetryingTransport(
            DeadTransport(), RetryPolicy(max_attempts=2, base_delay=0.0),
            seed=1, telemetry=telemetry, sleep=no_sleep,
        )
        with pytest.raises(TransportError):
            transport.request(Message("ping", {}))
        names = [e.name for e in telemetry.events.sink.events]
        assert "client.give_up" in names


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValidationError):
            FaultPlan(drop_request=1.5)
        with pytest.raises(ValidationError):
            FaultPlan(delay_s=-1.0)
        assert not FaultPlan().active
        assert FaultPlan(duplicate=0.1).active

    def test_parse(self):
        plan = FaultPlan.parse("drop=0.2, dup=0.1, drop-ack=0.3, delay_s=2")
        assert plan.drop_request == 0.2
        assert plan.duplicate == 0.1
        assert plan.drop_response == 0.3
        assert plan.delay_s == 2.0

    def test_parse_all(self):
        plan = FaultPlan.parse("all=0.25")
        assert plan.drop_request == plan.disconnect == plan.corrupt == 0.25

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValidationError):
            FaultPlan.parse("warp=0.5")
        with pytest.raises(ValidationError):
            FaultPlan.parse("drop")
        with pytest.raises(ValidationError):
            FaultPlan.parse("drop=lots")


class TestFaultInjectingTransport:
    def test_zero_plan_is_transparent(self):
        transport = FaultInjectingTransport(EchoTransport(), FaultPlan(), seed=1)
        for _ in range(50):
            assert transport.request(Message("ping", {})).type == "pong"
        assert transport.injected == {}

    def test_schedule_is_seed_deterministic(self):
        plan = FaultPlan(drop_request=0.3, drop_response=0.3, duplicate=0.3)

        def run(seed):
            transport = FaultInjectingTransport(
                EchoTransport(), plan, seed=seed, sleep=no_sleep
            )
            outcomes = []
            for _ in range(40):
                try:
                    transport.request(Message("ping", {}))
                    outcomes.append("ok")
                except TransportError as exc:
                    outcomes.append(str(exc))
            return outcomes, dict(transport.injected)

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_drop_response_commits_server_side(self, tmp_path, server):
        """The canonical lost-ack: the sync landed, the ack did not."""
        inner = InProcessTransport(server)
        transport = FaultInjectingTransport(
            inner, FaultPlan(drop_response=1.0), seed=1
        )
        client = UUCSClient(
            ClientConfig(root=tmp_path / "c", user_id="u"), inner, seed=1
        )
        client.register({})
        client.hot_sync()
        feedback = make_user(sample_population(1, seed=2)[0], seed=3)
        client.run_script(["word-blank-1"], feedback, task="word")
        client._transport = transport
        with pytest.raises(TransportError):
            client.hot_sync()
        # Server committed, client still queued: exactly the state the
        # idempotent retry must untangle.
        assert len(server.results) == 1
        assert len(client.results) == 1
        client._transport = inner
        _, uploaded = client.hot_sync()
        assert uploaded == 1
        assert len(client.results) == 0
        assert len(server.results) == 1  # no duplicate from the replay

    def test_duplicate_delivery_deduped(self, tmp_path, server):
        inner = InProcessTransport(server)
        transport = FaultInjectingTransport(
            inner, FaultPlan(duplicate=1.0), seed=1
        )
        client = UUCSClient(
            ClientConfig(root=tmp_path / "c", user_id="u"), inner, seed=1
        )
        client.register({})
        client.hot_sync()
        feedback = make_user(sample_population(1, seed=2)[0], seed=3)
        client.run_script(["word-blank-1"], feedback, task="word")
        client._transport = transport
        client.hot_sync()  # request delivered twice; store must hold one
        run_ids = [r.run_id for r in server.results]
        assert len(run_ids) == 1


def _run_fleet(tmp_path, faulted, seed=77, n_clients=3, runs_each=8):
    """Drive a small fleet; return (server run_ids list, client GUID map)."""
    from repro.util.rng import derive_rng

    server = UUCSServer(tmp_path / "server", seed=derive_rng(seed, "srv"))
    server.add_testcases(task_testcases("word"))
    all_expected = []
    for index in range(n_clients):
        rng = derive_rng(seed, "client", index)
        inner = InProcessTransport(server)
        if faulted:
            chaotic = FaultInjectingTransport(
                inner,
                FaultPlan(
                    drop_request=0.25, drop_response=0.25,
                    duplicate=0.25, disconnect=0.1,
                ),
                seed=derive_rng(seed, "chaos", index),
                sleep=no_sleep,
            )
            transport = RetryingTransport(
                chaotic,
                RetryPolicy(max_attempts=16, base_delay=0.0, retry_budget=10_000),
                seed=derive_rng(seed, "retry", index),
                sleep=no_sleep,
            )
        else:
            transport = inner
        client = UUCSClient(
            ClientConfig(root=tmp_path / f"c{faulted}-{index}", user_id=f"u{index}"),
            transport,
            seed=rng,
        )
        client.register({})
        client.hot_sync()
        feedback = make_user(
            sample_population(1, seed=derive_rng(seed, "pop", index))[0],
            seed=derive_rng(seed, "fb", index),
        )
        for _ in range(runs_each):
            run = client.run_script(["word-blank-1"], feedback, task="word")[0]
            all_expected.append(run.run_id)
            client.try_sync()
        # Reconcile whatever chaos left queued.
        for _ in range(50):
            if not len(client.results):
                break
            client.try_sync()
        assert len(client.results) == 0
    return [r.run_id for r in server.results], all_expected


class TestFaultEquivalence:
    def test_faulted_store_equals_fault_free_store(self, tmp_path):
        """Under seeded chaos, the merged result store ends up exactly the
        fault-free set of run_ids: no duplicates, no losses."""
        clean_ids, clean_expected = _run_fleet(tmp_path / "clean", faulted=False)
        chaos_ids, chaos_expected = _run_fleet(tmp_path / "chaos", faulted=True)
        # The clients are seed-identical, so both fleets produced the
        # same runs...
        assert sorted(clean_expected) == sorted(chaos_expected)
        # ...and both stores hold each exactly once.
        assert len(chaos_ids) == len(set(chaos_ids))
        assert sorted(chaos_ids) == sorted(clean_ids) == sorted(clean_expected)
