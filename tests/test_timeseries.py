"""Unit and property tests for repro.util.timeseries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.util.timeseries import SampledSeries


def series(values, rate=1.0):
    return SampledSeries(rate, np.asarray(values, dtype=float))


class TestConstruction:
    def test_basic_properties(self):
        s = series([0, 0.5, 1.0, 1.5, 2.0])
        assert len(s) == 5
        assert s.duration == 5.0
        assert s.sample_rate == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            series([])

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValidationError):
            series([1.0], rate=0.0)
        with pytest.raises(ValidationError):
            series([1.0], rate=-2.0)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            series([1.0, float("nan")])
        with pytest.raises(ValidationError):
            series([float("inf")])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            SampledSeries(1.0, np.zeros((2, 2)))

    def test_values_are_immutable(self):
        s = series([1.0, 2.0])
        with pytest.raises(ValueError):
            s.values[0] = 9.0

    def test_input_array_copied(self):
        arr = np.array([1.0, 2.0])
        s = series(arr)
        arr[0] = 42.0
        assert s.values[0] == 1.0

    def test_equality_and_hash(self):
        a = series([1.0, 2.0])
        b = series([1.0, 2.0])
        c = series([1.0, 2.0], rate=2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a series"


class TestLookup:
    def test_paper_example_semantics(self):
        # "[0, 0.5, 1.0, 1.5, 2.0]" at 1 Hz: 1.5 applies from 3 to 4 s.
        s = series([0, 0.5, 1.0, 1.5, 2.0])
        assert s.value_at(3.0) == 1.5
        assert s.value_at(3.999) == 1.5
        assert s.value_at(4.0) == 2.0

    def test_end_of_series_maps_to_last_sample(self):
        s = series([1.0, 2.0])
        assert s.value_at(2.0) == 2.0

    def test_out_of_range_raises(self):
        s = series([1.0])
        with pytest.raises(ValidationError):
            s.value_at(-0.1)
        with pytest.raises(ValidationError):
            s.value_at(1.5)

    def test_times(self):
        s = series([5, 6, 7], rate=2.0)
        assert np.allclose(s.times(), [0.0, 0.5, 1.0])

    def test_last_values_window(self):
        s = series([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(s.last_values(6.0)) == [2, 3, 4, 5, 6]
        assert list(s.last_values(1.0)) == [0, 1]
        assert list(s.last_values(0.0, n=5)) == [0]

    def test_iter_segments(self):
        s = series([1.0, 2.0], rate=2.0)
        segs = list(s.iter_segments())
        assert segs == [(0.0, 0.5, 1.0), (0.5, 1.0, 2.0)]


class TestTransforms:
    def test_slice_time(self):
        s = series(np.arange(10.0))
        sub = s.slice_time(2.0, 5.0)
        assert list(sub.values) == [2.0, 3.0, 4.0]

    def test_slice_rejects_bad_bounds(self):
        s = series([1.0, 2.0])
        with pytest.raises(ValidationError):
            s.slice_time(1.5, 1.0)
        with pytest.raises(ValidationError):
            s.slice_time(-1.0, 1.0)

    def test_resample_preserves_duration(self):
        s = series(np.arange(10.0))
        up = s.resample(4.0)
        assert up.duration == pytest.approx(s.duration)
        assert up.value_at(3.3) == s.value_at(3.3)

    def test_resample_downsamples(self):
        s = series(np.arange(10.0))
        down = s.resample(0.5)
        assert len(down) == 5
        assert down.value_at(0.0) == 0.0

    def test_scaled_and_clipped(self):
        s = series([1.0, 2.0, 3.0])
        assert list(s.scaled(2.0).values) == [2.0, 4.0, 6.0]
        assert list(s.clipped(1.5, 2.5).values) == [1.5, 2.0, 2.5]

    def test_summary_stats(self):
        s = series([1.0, 2.0, 3.0])
        assert s.min() == 1.0
        assert s.max() == 3.0
        assert s.mean() == 2.0


@settings(max_examples=60)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    rate=st.floats(min_value=0.1, max_value=100.0),
)
def test_property_value_at_matches_indexing(values, rate):
    s = SampledSeries(rate, np.array(values))
    for i in range(len(values)):
        t = i / rate
        assert s.value_at(t) == values[i]


@settings(max_examples=40)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    new_rate=st.floats(min_value=0.2, max_value=50.0),
)
def test_property_resample_preserves_range(values, new_rate):
    s = SampledSeries(1.0, np.array(values))
    r = s.resample(new_rate)
    assert r.min() >= s.min() - 1e-12
    assert r.max() <= s.max() + 1e-12
    assert abs(r.duration - s.duration) <= 1.0 / new_rate + 1e-9


@settings(max_examples=40)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=50,
    ),
    n=st.integers(min_value=1, max_value=10),
)
def test_property_last_values_suffix(values, n):
    s = SampledSeries(1.0, np.array(values))
    window = s.last_values(s.duration, n)
    assert 1 <= len(window) <= n
    assert list(window) == values[-len(window):]
