"""Tests for the combination-of-resources study extension (question 2)."""

import pytest

from repro.core.resources import Resource
from repro.errors import StudyError
from repro.study import combination_testcase, run_combination_study


@pytest.fixture(scope="module")
def combo_result():
    return run_combination_study(
        "ie", (Resource.CPU, Resource.DISK), n_users=20, seed=42
    )


class TestCombinationTestcase:
    def test_multi_resource_ramps(self):
        tc = combination_testcase("ie", (Resource.CPU, Resource.DISK))
        assert set(tc.functions) == {Resource.CPU, Resource.DISK}
        assert tc.functions[Resource.CPU].max_level() == pytest.approx(2.0)
        assert tc.functions[Resource.DISK].max_level() == pytest.approx(5.0)
        assert not tc.is_blank()

    def test_single_resource_arm(self):
        tc = combination_testcase("word", (Resource.CPU,))
        assert set(tc.functions) == {Resource.CPU}

    def test_needs_resources(self):
        with pytest.raises(StudyError):
            combination_testcase("ie", ())


class TestCombinationStudy:
    def test_arms_and_counts(self, combo_result):
        # 3 arms x 20 users.
        assert len(combo_result.runs) == 60
        assert combo_result.n_users == 20
        arms = {r.context.extra["arm"] for r in combo_result.runs}
        assert arms == {"cpu", "disk", "combined"}

    def test_union_effect_nonnegative(self, combo_result):
        """Borrowing both resources discomforts at least as often as the
        worse single resource (statistically; generous slack for n=20)."""
        assert combo_result.f_d_combined >= (
            max(combo_result.f_d_single.values()) - 0.15
        )

    def test_combined_reacts_at_no_higher_first_resource_level(
        self, combo_result
    ):
        """When both ramps run, discomfort arrives no later (in CPU-level
        terms) than under the CPU ramp alone."""
        single = combo_result.c_a_single[Resource.CPU]
        combined = combo_result.c_a_combined_first
        assert single is not None and combined is not None
        assert combined <= single + 0.2

    def test_deterministic(self):
        a = run_combination_study("quake", n_users=5, seed=7)
        b = run_combination_study("quake", n_users=5, seed=7)
        assert [r.run_id for r in a.runs] == [r.run_id for r in b.runs]

    def test_validation(self):
        with pytest.raises(StudyError):
            run_combination_study("ie", n_users=0)
        with pytest.raises(StudyError):
            run_combination_study("ie", (Resource.CPU,))
