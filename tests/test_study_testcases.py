"""Tests for the Figure 8 testcase table."""

import pytest

from repro import paperdata
from repro.core.resources import Resource
from repro.errors import ValidationError
from repro.study.testcases import (
    TESTCASE_DURATION,
    blank_testcase,
    ramp_testcase,
    step_testcase,
    task_testcases,
)


class TestFigure8Parameters:
    @pytest.mark.parametrize("task", paperdata.STUDY_TASKS)
    def test_eight_testcases_per_task(self, task):
        testcases = task_testcases(task)
        assert len(testcases) == 8
        blanks = [t for t in testcases if t.is_blank()]
        assert len(blanks) == 2
        assert all(t.duration == TESTCASE_DURATION for t in testcases)

    @pytest.mark.parametrize("task", paperdata.STUDY_TASKS)
    @pytest.mark.parametrize(
        "resource", [Resource.CPU, Resource.MEMORY, Resource.DISK]
    )
    def test_ramp_parameters_match_figure8(self, task, resource):
        x, t = paperdata.RAMP_PARAMS[(task, resource)]
        testcase = ramp_testcase(task, resource)
        fn = testcase.functions[resource]
        assert fn.shape == "ramp"
        assert fn.max_level() == pytest.approx(x)
        assert fn.duration == pytest.approx(t)
        assert testcase.metadata["task"] == task

    @pytest.mark.parametrize("task", paperdata.STUDY_TASKS)
    @pytest.mark.parametrize(
        "resource", [Resource.CPU, Resource.MEMORY, Resource.DISK]
    )
    def test_step_parameters_match_figure8(self, task, resource):
        x, t, b = paperdata.STEP_PARAMS[(task, resource)]
        fn = step_testcase(task, resource).functions[resource]
        assert fn.shape == "step"
        assert fn.level_at(b - 1.0) == 0.0
        assert fn.level_at(b + 1.0) == pytest.approx(x)
        assert fn.duration == pytest.approx(t)

    def test_word_cpu_is_most_tolerant_calibration(self):
        # §3.2: Word needs far higher CPU contention than Quake.
        word_x = paperdata.RAMP_PARAMS[("word", Resource.CPU)][0]
        quake_x = paperdata.RAMP_PARAMS[("quake", Resource.CPU)][0]
        assert word_x > 5 * quake_x

    def test_memory_ramps_cover_full_memory(self):
        for task in paperdata.STUDY_TASKS:
            x, _ = paperdata.RAMP_PARAMS[(task, Resource.MEMORY)]
            assert x == 1.0

    def test_unique_ids_across_all_tasks(self):
        ids = [
            t.testcase_id
            for task in paperdata.STUDY_TASKS
            for t in task_testcases(task)
        ]
        assert len(ids) == len(set(ids))

    def test_blank_exercises_nothing(self):
        tc = blank_testcase("word")
        assert tc.is_blank()
        assert tc.levels_at(60.0)[Resource.CPU] == 0.0

    def test_unknown_task_rejected(self):
        with pytest.raises(ValidationError):
            task_testcases("emacs")
