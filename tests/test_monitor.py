"""Tests for the system monitor (simulated, procfs, recorder)."""

import time

import pytest

from repro.apps import get_task
from repro.core.resources import Resource
from repro.errors import MonitorError
from repro.machine import SimulatedMachine
from repro.monitor import LoadRecorder, ProcfsMonitor, SimulatedMonitor
from repro.monitor.procfs import _read_cpu_times, _read_io_ticks, _read_meminfo


class TestSimulatedMonitor:
    def test_tracks_levels(self, machine):
        monitor = SimulatedMonitor(machine, get_task("word"))
        idle = monitor.sample()
        monitor.set_levels({Resource.CPU: 5.0, Resource.MEMORY: 0.5})
        loaded = monitor.sample()
        assert loaded.cpu_utilization > idle.cpu_utilization
        assert loaded.memory_used > idle.memory_used

    def test_no_task(self, machine):
        monitor = SimulatedMonitor(machine)
        sample = monitor.sample()
        assert sample.cpu_utilization == 0.0


class TestProcfsParsing:
    def test_cpu_line(self):
        busy, total = _read_cpu_times(
            "cpu  100 0 50 800 50 0 0 0 0 0\ncpu0 1 2 3 4\n"
        )
        assert total == 1000.0
        assert busy == 150.0

    def test_cpu_line_missing(self):
        with pytest.raises(MonitorError):
            _read_cpu_times("intr 1 2 3\n")

    def test_meminfo(self):
        text = "MemTotal: 1000 kB\nMemFree: 200 kB\nMemAvailable: 400 kB\n"
        assert _read_meminfo(text) == pytest.approx(0.6)

    def test_meminfo_fallback_without_available(self):
        text = "MemTotal: 1000 kB\nMemFree: 300 kB\nCached: 100 kB\n"
        assert _read_meminfo(text) == pytest.approx(0.6)

    def test_meminfo_missing_total(self):
        with pytest.raises(MonitorError):
            _read_meminfo("MemFree: 1 kB\n")

    def test_io_ticks_skips_partitions_and_virtual(self):
        lines = [
            "8 0 sda 1 0 0 0 0 0 0 0 0 500 0",
            "8 1 sda1 1 0 0 0 0 0 0 0 0 400 0",
            "7 0 loop0 1 0 0 0 0 0 0 0 0 300 0",
            "259 0 nvme0n1 1 0 0 0 0 0 0 0 0 200 0",
        ]
        assert _read_io_ticks("\n".join(lines)) == 700.0


class TestProcfsMonitor:
    def test_live_sampling(self):
        monitor = ProcfsMonitor()
        first = monitor.sample()
        assert 0.0 <= first.memory_used <= 1.0
        time.sleep(0.05)
        second = monitor.sample()
        assert 0.0 <= second.cpu_utilization <= 1.0
        assert 0.0 <= second.disk_utilization <= 1.0

    def test_bad_root(self, tmp_path):
        with pytest.raises(MonitorError):
            ProcfsMonitor(tmp_path)

    def test_fake_procfs(self, tmp_path):
        (tmp_path / "stat").write_text("cpu  100 0 0 900 0 0 0 0 0 0\n")
        (tmp_path / "meminfo").write_text(
            "MemTotal: 1000 kB\nMemAvailable: 500 kB\nMemFree: 100 kB\n"
        )
        (tmp_path / "diskstats").write_text(
            "8 0 sda 1 0 0 0 0 0 0 0 0 100 0\n"
        )
        monitor = ProcfsMonitor(tmp_path)
        monitor.sample()
        # Advance the fake counters: 50 busy of 100 total new jiffies.
        (tmp_path / "stat").write_text("cpu  150 0 0 950 0 0 0 0 0 0\n")
        sample = monitor.sample()
        assert sample.cpu_utilization == pytest.approx(0.5)
        assert sample.memory_used == pytest.approx(0.5)


class TestRecorder:
    def test_synchronous_sampling(self, machine):
        monitor = SimulatedMonitor(machine, get_task("ie"))
        recorder = LoadRecorder(monitor, sample_rate=2.0)
        for level in (0.0, 1.0, 2.0):
            monitor.set_levels({Resource.CPU: level})
            recorder.sample_once()
        trace = recorder.trace()
        assert len(recorder) == 3
        assert trace.sample_rate == 2.0
        assert trace.cpu.values[0] < trace.cpu.values[-1]
        run_trace = trace.as_run_trace()
        assert set(run_trace) == {"load_cpu", "load_memory", "load_disk"}

    def test_threaded_sampling(self, machine):
        monitor = SimulatedMonitor(machine, get_task("word"))
        recorder = LoadRecorder(monitor, sample_rate=50.0)
        recorder.start()
        time.sleep(0.2)
        recorder.stop()
        assert len(recorder) >= 3
        recorder.stop()  # idempotent

    def test_double_start_rejected(self, machine):
        recorder = LoadRecorder(SimulatedMonitor(machine), sample_rate=10.0)
        recorder.start()
        try:
            with pytest.raises(MonitorError):
                recorder.start()
        finally:
            recorder.stop()

    def test_empty_trace_rejected(self, machine):
        recorder = LoadRecorder(SimulatedMonitor(machine))
        with pytest.raises(MonitorError):
            recorder.trace()

    def test_bad_rate(self, machine):
        with pytest.raises(MonitorError):
            LoadRecorder(SimulatedMonitor(machine), sample_rate=0.0)
