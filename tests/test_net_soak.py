"""Concurrent-client soak tests for the server backends.

Every backend must serve N >= 32 simultaneously-syncing clients with
exactly-once result-store contents (including deliberate lost-ack
replays), and the asyncio backend must hold >= 256 concurrent
connections in one process — the mostly-idle fleet shape the paper's
Internet study implies at scale."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from test_sync_idempotent import sync_payload, tc

from repro.faults import (
    ChaosTCPProxy,
    FaultPlan,
    ReconnectingTCPTransport,
    RetryingTransport,
    RetryPolicy,
)
from repro.net import SERVER_BACKENDS, serve_transport
from repro.server import Message, UUCSServer
from repro.telemetry import Telemetry

BACKENDS = sorted(SERVER_BACKENDS)


def make_server(tmp_path, telemetry=None):
    server = UUCSServer(tmp_path / "server", seed=1, telemetry=telemetry)
    server.add_testcases([tc("a"), tc("b")])
    return server


@pytest.mark.parametrize("backend", BACKENDS)
class TestConcurrentSyncSoak:
    N_CLIENTS = 32
    SYNCS_PER_CLIENT = 3
    RUNS_PER_SYNC = 3

    def _client_session(self, listener, index):
        """One client: register, then sync batches — replaying each one
        as if its ack was lost, so idempotency is exercised *while* 31
        other clients hammer the same store."""
        with listener.connect() as transport:
            reg = transport.request(
                Message("register", {"snapshot": {"worker": index}})
            ).expect("registered")
            client_id = reg.payload["client_id"]
            uploaded = []
            for seq in range(1, self.SYNCS_PER_CLIENT + 1):
                run_ids = [
                    f"c{index:02d}-s{seq}-r{j}"
                    for j in range(self.RUNS_PER_SYNC)
                ]
                first = transport.request(
                    sync_payload(client_id, run_ids, sync_seq=seq)
                ).expect("sync_ok")
                assert first.payload["accepted"] == len(run_ids)
                replay = transport.request(
                    sync_payload(client_id, run_ids, sync_seq=seq)
                ).expect("sync_ok")
                assert replay.payload["accepted"] == 0
                assert replay.payload["duplicates"] == len(run_ids)
                uploaded.extend(run_ids)
            return uploaded

    def test_exactly_once_under_concurrency(self, tmp_path, backend):
        server = make_server(tmp_path)
        expected = []
        with serve_transport(server, backend=backend) as listener:
            with ThreadPoolExecutor(max_workers=self.N_CLIENTS) as pool:
                futures = [
                    pool.submit(self._client_session, listener, index)
                    for index in range(self.N_CLIENTS)
                ]
                for future in futures:
                    expected.extend(future.result(timeout=60.0))
        stored = sorted(server.results.run_ids())
        assert stored == sorted(expected)  # no loss, despite the replays
        # ...and nothing was written twice behind the index's back.
        assert len(server.results) == len(expected)
        assert len(server.registry) == self.N_CLIENTS


class TestAsyncioScale:
    N_CLIENTS = 256

    def test_sustains_256_concurrent_clients(self, tmp_path):
        """All 256 connections are open at once (the gauge proves it)
        and every client is served correctly through them."""
        telemetry = Telemetry()
        server = make_server(tmp_path, telemetry=telemetry)
        gauge = telemetry.metrics.gauge("uucs_server_open_connections")
        with serve_transport(server, backend="asyncio") as listener:
            transports = []
            try:
                def register(transport):
                    reg = transport.request(
                        Message("register", {"snapshot": {}})
                    ).expect("registered")
                    return reg.payload["client_id"]

                with ThreadPoolExecutor(max_workers=32) as pool:
                    for _ in range(self.N_CLIENTS):
                        transports.append(listener.connect())
                    client_ids = list(pool.map(register, transports))
                # Every connection is established and served — and still open.
                assert gauge.value() == self.N_CLIENTS
                assert len(set(client_ids)) == self.N_CLIENTS

                def sync(pair):
                    transport, client_id = pair
                    run_id = f"scale-{client_id[:8]}"
                    response = transport.request(
                        sync_payload(client_id, [run_id], sync_seq=1)
                    ).expect("sync_ok")
                    assert response.payload["accepted"] == 1
                    return run_id

                with ThreadPoolExecutor(max_workers=32) as pool:
                    run_ids = list(pool.map(sync, zip(transports, client_ids)))
            finally:
                for transport in transports:
                    transport.close()
        assert sorted(server.results.run_ids()) == sorted(run_ids)
        assert (
            telemetry.metrics.counter("uucs_server_connections_total").value()
            == self.N_CLIENTS
        )


class TestAsyncioChaosInterop:
    def test_chaos_proxy_in_front_of_asyncio_backend(self, tmp_path):
        """The `serve --chaos` deployment shape with the asyncio backend
        behind the proxy: a retrying client achieves exactly-once sync
        through injected drops, dups, and disconnects."""
        server = make_server(tmp_path)
        listener = serve_transport(server, backend="asyncio")
        proxy = ChaosTCPProxy(
            listener.address,
            FaultPlan(
                drop_request=0.15,
                drop_response=0.15,
                duplicate=0.15,
                disconnect=0.1,
            ),
            seed=2004,
        )
        host, port = proxy.address
        transport = RetryingTransport(
            ReconnectingTCPTransport(host, port, timeout=5.0),
            RetryPolicy(max_attempts=12, base_delay=0.001, max_delay=0.01,
                        retry_budget=100_000),
            seed=7,
        )
        try:
            client_id = transport.request(
                Message("register", {"snapshot": {}})
            ).expect("registered").payload["client_id"]
            expected = []
            for seq in range(1, 41):
                run_id = f"chaos-{seq:02d}"
                response = transport.request(
                    sync_payload(client_id, [run_id], sync_seq=seq)
                ).expect("sync_ok")
                assert response.payload["sync_seq"] == seq
                expected.append(run_id)
        finally:
            transport.close()
            proxy.close()
            listener.close()
        assert sorted(server.results.run_ids()) == sorted(expected)
        assert sum(proxy.injected.values()) > 0
        assert transport.retries > 0
