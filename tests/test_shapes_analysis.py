"""Tests for per-shape discomfort analysis, plus the exppar
serialization regression it uncovered."""

import numpy as np
import pytest

from repro.analysis.shapes import shape_table, summarize_shapes
from repro.core import Resource, Testcase, exppar
from repro.errors import InsufficientDataError


class TestExpparSerializationRegression:
    def test_shape_tag_survives_roundtrip(self):
        """The Pareto tail index must not be (de)serialized as the shape
        tag (it is stored under the key 'alpha')."""
        tc = Testcase.single(
            "q", exppar(Resource.CPU, 0.1, 1.5, 10.0, 120.0, seed=5)
        )
        restored = Testcase.from_text(tc.to_text())
        fn = restored.functions[Resource.CPU]
        assert fn.shape == "exppar"
        assert fn.params["alpha"] == 1.5

    def test_reserved_param_key_rejected(self):
        from repro.core.exercise import ExerciseFunction
        from repro.errors import SerializationError
        from repro.util.timeseries import SampledSeries

        fn = ExerciseFunction(
            Resource.CPU, SampledSeries(1.0, np.array([1.0])), "custom",
            {"shape": 2.0},
        )
        with pytest.raises(SerializationError):
            Testcase.single("bad", fn).to_text()


class TestShapeSummaries:
    @pytest.fixture(scope="class")
    def internet_runs(self):
        from repro.study import InternetStudyConfig, run_internet_study

        result = run_internet_study(
            InternetStudyConfig(
                n_clients=12, duration=4 * 3600.0,
                mean_execution_interval=500.0, library_size=60, seed=13,
            )
        )
        return list(result.runs)

    def test_groups_by_generator_tag(self, internet_runs):
        summaries = summarize_shapes(internet_runs)
        names = {s.shape for s in summaries}
        # Only real generator tags appear (the exppar regression guard).
        assert names <= {"expexp", "exppar", "step", "ramp", "sine",
                         "sawtooth", "constant"}
        assert "expexp" in names or "exppar" in names

    def test_sorted_by_fd(self, internet_runs):
        summaries = summarize_shapes(internet_runs)
        fds = [s.f_d for s in summaries]
        assert fds == sorted(fds, reverse=True)

    def test_exposure_fields(self, internet_runs):
        for s in summarize_shapes(internet_runs):
            assert s.mean_peak >= s.mean_exposure >= 0.0
            assert s.n_runs >= 3
            assert 0.0 <= s.f_d <= 1.0

    def test_table_renders(self, internet_runs):
        text = shape_table(summarize_shapes(internet_runs)).render()
        assert "f_d / exposure" in text

    def test_controlled_study_shapes(self, study_runs):
        summaries = summarize_shapes(study_runs)
        assert {s.shape for s in summaries} == {"ramp", "step"}

    def test_min_runs_filter(self):
        with pytest.raises(InsufficientDataError):
            summarize_shapes([])
