"""Tests for the `uucs top` dashboard (repro.telemetry.dashboard)."""

import io

import pytest

from repro.telemetry import (
    ClientRollup,
    ClientRollups,
    MetricsRegistry,
    RegistrySnapshot,
)
from repro.telemetry.dashboard import TopDashboard, _format_bytes
from repro.telemetry.exporter import MetricsExporter


def make_snapshot(syncs=4.0, observations=()):
    reg = MetricsRegistry()
    reg.counter("uucs_server_syncs_total", "S.").inc(syncs)
    reg.gauge("uucs_server_clients", "C.").set(2)
    h = reg.histogram("uucs_server_request_seconds", buckets=(0.1, 1.0))
    for v in observations:
        h.observe(v)
    return RegistrySnapshot.of(reg)


def make_clients(syncs=3):
    return [
        ClientRollup(
            client_id="aaaabbbbccccdddd",
            syncs=syncs,
            results=5,
            discomforts=1,
            bytes_read=2048,
            bytes_written=4096,
            pushes=1,
            last_seen=7.0,
        )
    ]


class FakeFeed:
    """Scripted snapshot/client feed standing in for a live exporter."""

    def __init__(self, frames):
        self.frames = list(frames)
        self.calls = 0

    def snapshot(self, host, port):
        return self.frames[min(self.calls, len(self.frames) - 1)][0]

    def clients(self, host, port):
        frame = self.frames[min(self.calls, len(self.frames) - 1)]
        self.calls += 1
        return frame[1]


class TestRendering:
    def _dashboard(self, frames, ticks=None):
        feed = FakeFeed(frames)
        clock = iter(ticks or [0.0, 10.0, 20.0, 30.0])
        return TopDashboard(
            "127.0.0.1",
            1234,
            interval=0.0,
            fetch_snapshot=feed.snapshot,
            fetch_clients=feed.clients,
            clock=lambda: next(clock),
        )

    def test_first_frame_has_no_rates(self):
        dash = self._dashboard([(make_snapshot(observations=[0.05]), make_clients())])
        frame = dash.render_once()
        assert "uucs top — 127.0.0.1:1234 — tick 1" in frame
        assert "Counters" in frame and "Gauges" in frame
        assert "Histograms" in frame and "Clients" in frame
        assert "aaaabbbbcccc" in frame  # GUID truncated to 12 chars
        # no previous sample -> deltas and rates are the * placeholder
        assert "*" in frame

    def test_second_frame_computes_deltas_and_rates(self):
        dash = self._dashboard(
            [
                (make_snapshot(syncs=4.0), make_clients(syncs=3)),
                (make_snapshot(syncs=24.0), make_clients(syncs=9)),
            ]
        )
        dash.render_once()
        frame = dash.render_once()
        # counter went 4 -> 24 over dt=10s: delta 20, rate 2/s
        row = next(
            line for line in frame.splitlines()
            if line.startswith("uucs_server_syncs_total")
        )
        assert "20" in row and "2.00" in row
        # client sync delta 9 - 3 = 6
        client_row = next(
            line for line in frame.splitlines()
            if line.startswith("aaaabbbbcccc")
        )
        assert "6" in client_row.split()

    def test_histogram_quantile_columns(self):
        snapshot = make_snapshot(observations=[0.05] * 50 + [0.5] * 50)
        dash = self._dashboard([(snapshot, [])])
        frame = dash.render_once()
        row = next(
            line for line in frame.splitlines()
            if line.startswith("uucs_server_request_seconds")
        )
        # p50 lands in the first bucket, p99 in the second
        cells = row.split()
        assert cells[1] == "100"  # count
        assert float(cells[3]) <= 0.1  # p50
        assert 0.1 < float(cells[5]) <= 1.0  # p99

    def test_empty_snapshot_renders_header_only(self):
        dash = self._dashboard([(RegistrySnapshot({}), [])])
        frame = dash.render_once()
        assert "0 metrics, 0 clients" in frame
        assert "Counters" not in frame

    def test_run_writes_frames_and_honours_iterations(self):
        dash = self._dashboard(
            [(make_snapshot(), make_clients())], ticks=[0.0, 1.0, 2.0, 3.0]
        )
        out = io.StringIO()
        slept = []
        drawn = dash.run(iterations=3, out=out, sleep=slept.append, clear=False)
        assert drawn == 3
        assert out.getvalue().count("uucs top —") == 3
        assert slept == [0.0, 0.0]  # no sleep after the final frame
        assert "\x1b[2J" not in out.getvalue()

    def test_run_clear_screen_prefix(self):
        dash = self._dashboard([(make_snapshot(), [])])
        out = io.StringIO()
        dash.run(iterations=1, out=out, sleep=lambda _s: None, clear=True)
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_run_stops_on_keyboard_interrupt(self):
        dash = self._dashboard(
            [(make_snapshot(), [])], ticks=[0.0, 1.0, 2.0, 3.0, 4.0]
        )

        def interrupt(_s):
            raise KeyboardInterrupt

        out = io.StringIO()
        drawn = dash.run(iterations=0, out=out, sleep=interrupt, clear=False)
        assert drawn == 1


class TestAgainstLiveExporter:
    def test_polls_live_exporter(self):
        reg = MetricsRegistry()
        reg.counter("uucs_server_syncs_total", "S.").inc(2)
        reg.histogram("uucs_server_request_seconds", buckets=(0.1, 1.0)).observe(0.05)
        rollups = ClientRollups()
        rollups.record_sync("guid-1", results=4, discomforts=2, now=3.0)
        with MetricsExporter(reg, rollups=rollups) as exporter:
            host, port = exporter.address
            dash = TopDashboard(host, port, interval=0.0)
            first = dash.render_once()
            reg.counter("uucs_server_syncs_total").inc(6)
            second = dash.render_once()
        assert "uucs_server_syncs_total" in first
        assert "guid-1" in first
        row = next(
            line for line in second.splitlines()
            if line.startswith("uucs_server_syncs_total")
        )
        assert "8" in row.split()  # new value visible on the next poll
        assert "6" in row.split()  # and the delta since the last frame


def test_format_bytes():
    assert _format_bytes(512) == "512B"
    assert _format_bytes(2048) == "2.0KiB"
    assert _format_bytes(5 * 1024 * 1024) == "5.0MiB"
    assert _format_bytes(3 * 1024**3) == "3.0GiB"


def test_cli_top_and_clients_against_live_exporter(capsys):
    from repro.cli import main

    reg = MetricsRegistry()
    reg.counter("uucs_server_syncs_total", "S.").inc(1)
    rollups = ClientRollups()
    rollups.record_sync("guid-42", results=1, now=2.0)
    with MetricsExporter(reg, rollups=rollups) as exporter:
        _, port = exporter.address
        assert main(["clients", "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "guid-42" in out
        assert main(
            ["top", "--port", str(port), "--iterations", "1",
             "--interval", "0", "--no-clear"]
        ) == 0
        out = capsys.readouterr().out
        assert "uucs top —" in out
        assert "guid-42" in out


def test_cli_top_unreachable_endpoint_exits_protocol_error():
    from repro.cli import main

    assert main(["top", "--port", "1", "--iterations", "1"]) == 6
    assert main(["clients", "--port", "1"]) == 6
