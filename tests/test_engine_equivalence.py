"""The fast engines' contract: bit-for-bit equivalence with the loop.

The vectorized engines (repro.study.engine's analytic closed form and
repro.study.batch's cell-batched fleet path) may only ever be
optimizations.  These tests drive the engines with identically-seeded
users over the full study and over adversarial generated shapes, and
require *identical* run records — outcomes, offsets, levels, traces —
down to the serialized bytes the result store would hold.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_task
from repro.apps.registry import TASK_ORDER
from repro.core.exercise import ExerciseFunction
from repro.core.resources import Resource
from repro.core.run import RunContext
from repro.core.session import run_simulated_session
from repro.core.testcase import Testcase
from repro.machine import SimulatedMachine
from repro.monitor.base import SimulatedMonitor
from repro.study import ControlledStudyConfig, run_controlled_study
from repro.study import batch as batch_mod
from repro.study.engine import _threshold_fire_step, run_analytic_session
from repro.users.behavior import BehaviorParams, SimulatedUser
from repro.users.population import sample_profile
from repro.users.tolerance import ToleranceSpec, ToleranceTable
from repro.util.rng import derive_rng
from repro.util.timeseries import SampledSeries


class TestFullStudyEquivalence:
    def test_identical_runs_across_engines(self):
        fast = run_controlled_study(
            ControlledStudyConfig(n_users=8, seed=321, engine="analytic")
        )
        slow = run_controlled_study(
            ControlledStudyConfig(n_users=8, seed=321, engine="loop")
        )
        assert len(fast.runs) == len(slow.runs)
        for a, b in zip(fast.runs, slow.runs):
            assert a == b, (a.run_id, a.outcome, b.outcome)

    def test_default_engine_is_analytic(self):
        assert ControlledStudyConfig().engine == "analytic"

    def test_unknown_engine_rejected(self):
        from repro.errors import StudyError

        with pytest.raises(StudyError):
            ControlledStudyConfig(engine="quantum")


def _user(threshold_mu, noise_prob, delay, seed, sigma=0.3, ramp_bonus=0.1):
    table = ToleranceTable(
        {
            ("word", Resource.CPU): ToleranceSpec(
                "word", Resource.CPU, p_react=0.9, mu=threshold_mu,
                sigma=sigma, ramp_bonus=ramp_bonus,
            )
        }
    )
    profile = sample_profile("eq-user", seed=seed)
    profile = type(profile)(
        user_id=profile.user_id,
        ratings=profile.ratings,
        tolerance_factor=profile.tolerance_factor,
        reaction_delay_mean=delay,
    )
    params = BehaviorParams(
        noise_prob_blank={"word": noise_prob}, noise_inrun_factor=0.5
    )
    return SimulatedUser(profile, table, params, seed=seed)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=8.0), min_size=1, max_size=100
    ),
    rate=st.sampled_from([0.5, 1.0, 3.0, 4.0]),
    mu=st.floats(min_value=-1.5, max_value=1.5),
    noise=st.floats(min_value=0.0, max_value=1.0),
    delay=st.floats(min_value=0.1, max_value=10.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_engines_identical(values, rate, mu, noise, delay, seed):
    """Random level series (dips included), thresholds, delays, and noise:
    both engines must emit the same run, trace for trace."""
    fn = ExerciseFunction(
        Resource.CPU, SampledSeries(rate, np.array(values)), "custom", {}
    )
    testcase = Testcase.single("eq", fn)
    machine = SimulatedMachine()
    task = get_task("word")
    model = machine.interactivity_model(task)
    monitor = SimulatedMonitor(machine, task)
    context = RunContext(user_id="eq-user", task="word")

    loop_result = run_simulated_session(
        testcase, _user(mu, noise, delay, seed), context, model,
        run_id="fixed", monitor=monitor,
    )
    analytic_result = run_analytic_session(
        testcase, _user(mu, noise, delay, seed), context, model,
        run_id="fixed", monitor=monitor,
    )
    a, b = loop_result.run, analytic_result.run
    assert a.outcome == b.outcome
    assert a.end_offset == b.end_offset
    if a.feedback is not None:
        assert a.feedback.source == b.feedback.source
        assert a.feedback.offset == b.feedback.offset
    assert a == b
    assert np.array_equal(
        loop_result.slowdown_trace, analytic_result.slowdown_trace
    )
    assert np.array_equal(
        loop_result.jitter_trace, analytic_result.jitter_trace
    )


@settings(max_examples=40, deadline=None)
@given(
    levels=st.dictionaries(
        st.sampled_from([Resource.CPU, Resource.MEMORY, Resource.DISK]),
        st.floats(min_value=0.0, max_value=1.0),
        min_size=1,
        max_size=3,
    ),
    task_name=st.sampled_from(["word", "powerpoint", "ie", "quake"]),
)
def test_property_batch_matches_scalar_interactivity(levels, task_name):
    """The vectorized machine paths are element-identical to scalars."""
    machine = SimulatedMachine()
    task = get_task(task_name)
    model = machine.interactivity_model(task)
    n = 7
    arrays = {r: np.full(n, v) for r, v in levels.items()}
    slow, jit = model.interactivity_batch(arrays, n)
    scalar = model.interactivity(levels)
    assert np.all(slow == scalar.slowdown)
    assert np.all(jit == scalar.jitter)
    cpu, mem, disk = machine.sample_load_batch(task, arrays, n)
    load = machine.sample_load(task, levels)
    assert np.all(cpu == load.cpu_utilization)
    assert np.all(mem == load.memory_used)
    assert np.all(disk == load.disk_utilization)


def _serialized(result) -> list[bytes]:
    return [(run.to_json() + "\n").encode() for run in result.runs]


class TestBatchStudyEquivalence:
    """The batch engine's study-level byte contract vs the analytic."""

    def test_full_study_byte_equal(self):
        batch = run_controlled_study(
            ControlledStudyConfig(n_users=16, seed=77, engine="batch")
        )
        scalar = run_controlled_study(
            ControlledStudyConfig(n_users=16, seed=77, engine="analytic")
        )
        assert _serialized(batch) == _serialized(scalar)

    def test_full_task_order_64_users(self):
        cfg = dict(n_users=64, seed=4242, tasks=TASK_ORDER)
        batch = run_controlled_study(
            ControlledStudyConfig(engine="batch", **cfg)
        )
        scalar = run_controlled_study(
            ControlledStudyConfig(engine="analytic", **cfg)
        )
        assert _serialized(batch) == _serialized(scalar)

    def test_profiles_identical(self):
        batch = run_controlled_study(
            ControlledStudyConfig(n_users=5, seed=9, engine="batch")
        )
        scalar = run_controlled_study(
            ControlledStudyConfig(n_users=5, seed=9, engine="analytic")
        )
        assert batch.profiles == scalar.profiles


@settings(max_examples=15, deadline=None)
@given(
    n_users=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    tasks=st.sampled_from(
        [("word",), ("quake",), ("ie", "powerpoint"), TASK_ORDER]
    ),
)
def test_property_batch_study_byte_equal(n_users, seed, tasks):
    """Any (population size, seed, task mix): the batch engine's records
    serialize byte-for-byte as the scalar analytic engine's."""
    batch = run_controlled_study(
        ControlledStudyConfig(
            n_users=n_users, seed=seed, tasks=tasks, engine="batch"
        )
    )
    scalar = run_controlled_study(
        ControlledStudyConfig(
            n_users=n_users, seed=seed, tasks=tasks, engine="analytic"
        )
    )
    assert _serialized(batch) == _serialized(scalar)


def _scalar_fire(levels, threshold, delay, dt):
    step = _threshold_fire_step(levels, threshold, delay, dt)
    return -1 if step is None else step


class TestFireScanEdgeCases:
    """The vectorized fire scans vs the scalar, on adversarial inputs."""

    def test_threshold_exactly_at_level_sample(self):
        # >= must count equality as a crossing in both scan flavors.
        levels = np.array([0.0, 1.0, 1.5, 2.0])
        for th in (1.0, 1.5, 2.0):
            expected = _scalar_fire(levels, th, 0.0, 1.0)
            generic = batch_mod._fire_steps(
                levels, np.array([th]), np.array([0.0]), 1.0
            )
            mono = batch_mod._fire_steps_monotone(
                levels, np.array([th]), np.array([0.0]), 1.0
            )
            assert generic[0] == expected, th
            assert mono[0] == expected, th

    def test_noise_at_t_zero_fires_at_step_zero(self):
        steps = batch_mod._noise_steps(np.array([0.0]), 0.25, 480)
        assert steps[0] == 0

    def test_noise_nan_means_no_event(self):
        steps = batch_mod._noise_steps(np.array([math.nan]), 0.25, 480)
        assert steps[0] == -1

    def test_noise_beyond_duration_never_fires(self):
        # t >= noise_time is first met at step n_steps => out of range.
        steps = batch_mod._noise_steps(np.array([119.9]), 0.25, 480)
        assert steps[0] == 480 - 1 if 479 * 0.25 >= 119.9 else -1
        steps = batch_mod._noise_steps(np.array([130.0]), 0.25, 480)
        assert steps[0] == -1

    def test_dip_and_recross_resets_clock(self):
        # Crossing at 0 is reset by the dip; only the later run matures.
        levels = np.array([2.0, 2.0, 0.0, 2.0, 2.0, 2.0])
        expected = _scalar_fire(levels, 1.5, 2.0, 1.0)
        got = batch_mod._fire_steps(
            levels, np.array([1.5]), np.array([2.0]), 1.0
        )
        assert expected == 5 and got[0] == 5

    def test_dip_keeps_it_from_ever_firing(self):
        levels = np.array([2.0, 0.0, 2.0, 0.0, 2.0, 0.0])
        got = batch_mod._fire_steps(
            levels, np.array([1.5]), np.array([1.0]), 1.0
        )
        assert got[0] == _scalar_fire(levels, 1.5, 1.0, 1.0) == -1

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=4.0), min_size=1,
            max_size=60,
        ),
        threshold=st.floats(min_value=0.0, max_value=4.5),
        delay=st.floats(min_value=0.0, max_value=20.0),
        rate=st.sampled_from([0.5, 1.0, 4.0]),
    )
    def test_property_generic_scan_matches_scalar(
        self, values, threshold, delay, rate
    ):
        levels = np.asarray(values)
        expected = _scalar_fire(levels, threshold, delay, 1.0 / rate)
        got = batch_mod._fire_steps(
            levels, np.array([threshold]), np.array([delay]), 1.0 / rate
        )
        assert got[0] == expected

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=4.0), min_size=1,
            max_size=60,
        ),
        threshold=st.floats(min_value=0.0, max_value=4.5),
        delay=st.floats(min_value=0.0, max_value=20.0),
        rate=st.sampled_from([0.5, 1.0, 4.0]),
    )
    def test_property_monotone_scan_matches_generic(
        self, values, threshold, delay, rate
    ):
        """On sorted (monotone) series the closed form and the 2-D scan
        agree everywhere — the dispatch precondition in _decide."""
        levels = np.sort(np.asarray(values))
        mono = batch_mod._fire_steps_monotone(
            levels, np.array([threshold]), np.array([delay]), 1.0 / rate
        )
        generic = batch_mod._fire_steps(
            levels, np.array([threshold]), np.array([delay]), 1.0 / rate
        )
        assert mono[0] == generic[0]


class TestRngIdentities:
    """Every RNG shortcut the batch draw phase takes, pinned against the
    exact scalar call it replaces (bits *and* stream state)."""

    @settings(max_examples=25, deadline=None)
    @given(
        entropy=st.integers(min_value=0, max_value=2**128 - 1),
        index=st.integers(min_value=0, max_value=2**20),
    )
    def test_property_fast_derive_matches_derive_rng(self, entropy, index):
        for label in ("user-session", "user-behavior"):
            stream = batch_mod._DerivedStream(entropy, label)
            fast = stream.rng(*batch_mod._fnv_words(index))
            ref = derive_rng(entropy, label, index)
            assert fast.bit_generator.state == ref.bit_generator.state
            assert np.array_equal(fast.random(3), ref.random(3))

    def test_flat_run_id_block_matches_sequential_draws(self):
        # One integers(size=n*16) call == n sequential 16-byte draws ==
        # one integers(size=(n, 16)) call, bits and stream state.
        for seed in (0, 7, 2004):
            a = np.random.default_rng(seed)
            b = np.random.default_rng(seed)
            c = np.random.default_rng(seed)
            flat = a.integers(0, 256, size=8 * 16, dtype=np.uint8)
            grid = b.integers(0, 256, size=(8, 16), dtype=np.uint8)
            seq = np.concatenate([
                c.integers(0, 256, size=16, dtype=np.uint8)
                for _ in range(8)
            ])
            assert flat.tobytes() == grid.tobytes() == seq.tobytes()
            assert (
                a.bit_generator.state
                == b.bit_generator.state
                == c.bit_generator.state
            )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        bound=st.floats(min_value=1e-6, max_value=1e6),
    )
    def test_property_uniform_decomposition(self, seed, bound):
        a = np.random.default_rng(seed)
        b = np.random.default_rng(seed)
        assert a.uniform(0.0, bound) == bound * b.random()
        assert a.uniform(1.5, 5.0) == 1.5 + 3.5 * b.random()
        assert a.bit_generator.state == b.bit_generator.state

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        loc=st.floats(min_value=-10.0, max_value=10.0),
        scale=st.floats(min_value=1e-6, max_value=10.0),
    )
    def test_property_normal_decomposition(self, seed, loc, scale):
        a = np.random.default_rng(seed)
        b = np.random.default_rng(seed)
        assert a.normal(loc, scale) == loc + scale * b.standard_normal()
        assert a.bit_generator.state == b.bit_generator.state

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        x=st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_property_array_exp_equals_scalar_exp(self, seed, x):
        # _decide vectorizes the scalar path's np.exp over the delay
        # column; numpy routes the scalar through the same ufunc kernel.
        assert np.exp(np.array([x]))[0] == np.exp(x)

    @settings(max_examples=40, deadline=None)
    @given(
        xs=st.lists(
            st.floats(min_value=-50.0, max_value=50.0),
            min_size=1,
            max_size=200,
        )
    )
    def test_property_array_exp_elementwise(self, xs):
        # Same identity at realistic column widths: large arrays may take
        # a SIMD path inside the ufunc, which must still agree with the
        # scalar call to the last ulp (the z-threshold and delay columns
        # both lean on this).
        out = np.exp(np.asarray(xs)).tolist()
        for x, got in zip(xs, out):
            assert got == np.exp(x)


def _profiles(prefix, n, seed):
    return [sample_profile(f"{prefix}{i}", seed=seed + i) for i in range(n)]


class TestThresholdFinalization:
    """The deferred threshold math (_BlockSkill + _finalize_thresholds)
    vs the scalar sampling path, element for element on raw draws."""

    @settings(max_examples=30, deadline=None)
    @given(
        task=st.sampled_from(["word", "powerpoint", "ie", "quake"]),
        scale=st.one_of(
            st.floats(min_value=0.0, max_value=100.0), st.just(math.inf)
        ),
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_block_skill_matches_simulated_user(
        self, task, scale, n, seed
    ):
        from types import SimpleNamespace

        profiles = _profiles("sk", n, seed)
        params = BehaviorParams()
        table = ToleranceTable(
            {
                (task, Resource.CPU): ToleranceSpec(
                    task, Resource.CPU, p_react=0.5, mu=0.0, sigma=0.3
                )
            }
        )
        skill = batch_mod._BlockSkill(profiles, (task,), params)
        draw = SimpleNamespace(key=(task, Resource.CPU), task=task, mean=scale)
        got = skill.shift(draw)
        for profile, value in zip(profiles, got.tolist()):
            user = SimulatedUser(profile, table, params, seed=0)
            assert value == user._skill_shift(task, scale)
        # The column is computed once per (task, scale) and reused.
        assert skill.shift(draw) is got

    @settings(max_examples=30, deadline=None)
    @given(
        p_react=st.sampled_from([0.0, 0.2, 0.9, 1.0]),
        mu=st.floats(min_value=-1.5, max_value=1.5),
        sigma=st.floats(min_value=0.0, max_value=1.2),
        ramp_bonus=st.floats(min_value=0.0, max_value=0.4),
        range_max=st.one_of(
            st.none(), st.floats(min_value=0.5, max_value=8.0)
        ),
        shape=st.sampled_from(["ramp", "step"]),
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_finalize_matches_scalar_sampling(
        self, p_react, mu, sigma, ramp_bonus, range_max, shape, n, seed
    ):
        """Scalar reference: ``ToleranceSpec.sample_threshold`` + the
        post-processing of ``SimulatedUser.threshold_for``.  The raw-draw
        extraction below is the batch draw loop's, and must consume the
        exact same RNG stream (state asserted per user)."""
        spec = ToleranceSpec(
            "word", Resource.CPU, p_react=p_react, mu=mu, sigma=sigma,
            ramp_bonus=ramp_bonus, range_max=range_max,
        )
        profiles = _profiles("ft", n, seed)
        params = BehaviorParams()
        table = ToleranceTable({("word", Resource.CPU): spec})
        draw = batch_mod._ResourceDraw("word", Resource.CPU, spec, shape)
        col, expected = [], []
        for i, profile in enumerate(profiles):
            r_scalar = np.random.default_rng(seed * 31 + i)
            r_raw = np.random.default_rng(seed * 31 + i)
            base = spec.sample_threshold(r_scalar)
            if math.isinf(base):
                expected.append(base)
            else:
                user = SimulatedUser(profile, table, params, seed=0)
                th = base * profile.tolerance_factor
                th += user._skill_shift("word", spec.mean_threshold())
                if shape != "ramp":
                    th -= spec.ramp_bonus
                expected.append(max(1e-3, th))
            # The batch engine's phase-1 raw-draw logic.
            if spec.p_react <= 0.0 or r_raw.random() >= spec.p_react:
                col.append(math.inf)
            elif draw.is_z:
                col.append(r_raw.standard_normal())
            else:
                col.append(r_raw.random())
            assert (
                r_scalar.bit_generator.state == r_raw.bit_generator.state
            )
        skill = batch_mod._BlockSkill(profiles, ("word",), params)
        got = batch_mod._finalize_thresholds(draw, col, skill)
        for g, e in zip(got.tolist(), expected):
            assert g == e or (math.isnan(g) and math.isnan(e))

    def test_finalize_exp_overflow_passes_base_through(self):
        # Scalar: an overflowed base (inf) is returned before tolerance/
        # skill/floor ever apply; the vectorized path must not turn
        # inf * tolerance into NaN.
        spec = ToleranceSpec(
            "word", Resource.CPU, p_react=1.0, mu=700.0, sigma=1.0
        )
        profiles = _profiles("ov", 2, 3)
        draw = batch_mod._ResourceDraw("word", Resource.CPU, spec, "step")
        skill = batch_mod._BlockSkill(profiles, ("word",), BehaviorParams())
        with np.errstate(over="ignore"):
            got = batch_mod._finalize_thresholds(
                draw, [20.0, math.inf], skill
            )
        assert got[0] == math.inf  # armed, base overflowed
        assert got[1] == math.inf  # never-reacting marker

    def test_finalize_all_unarmed_short_circuits(self):
        spec = ToleranceSpec(
            "word", Resource.CPU, p_react=0.5, mu=0.0, sigma=0.3
        )
        profiles = _profiles("ua", 3, 11)
        draw = batch_mod._ResourceDraw("word", Resource.CPU, spec, "ramp")
        skill = batch_mod._BlockSkill(profiles, ("word",), BehaviorParams())
        got = batch_mod._finalize_thresholds(
            draw, [math.inf, math.inf, math.inf], skill
        )
        assert got.tolist() == [math.inf, math.inf, math.inf]

    def test_choice_equals_bisected_cdf(self):
        # population._draw_level's decomposition of Generator.choice.
        import bisect

        probs = (0.45, 0.45, 0.10)
        cdf = np.asarray(probs).cumsum()
        cdf /= cdf[-1]
        cdf = cdf.tolist()
        for seed in range(20):
            a = np.random.default_rng(seed)
            b = np.random.default_rng(seed)
            assert int(a.choice(3, p=probs)) == bisect.bisect_right(
                cdf, b.random()
            )
            assert a.bit_generator.state == b.bit_generator.state
