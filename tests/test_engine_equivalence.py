"""The analytic engine's contract: bit-for-bit equivalence with the loop.

The vectorized engine (repro.study.engine) may only ever be an
optimization.  These tests drive both engines with identically-seeded
users over the full study and over adversarial generated shapes, and
require *identical* run records — outcomes, offsets, levels, traces.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_task
from repro.core.exercise import ExerciseFunction
from repro.core.resources import Resource
from repro.core.run import RunContext
from repro.core.session import run_simulated_session
from repro.core.testcase import Testcase
from repro.machine import SimulatedMachine
from repro.monitor.base import SimulatedMonitor
from repro.study import ControlledStudyConfig, run_controlled_study
from repro.study.engine import run_analytic_session
from repro.users.behavior import BehaviorParams, SimulatedUser
from repro.users.population import sample_profile
from repro.users.tolerance import ToleranceSpec, ToleranceTable
from repro.util.timeseries import SampledSeries


class TestFullStudyEquivalence:
    def test_identical_runs_across_engines(self):
        fast = run_controlled_study(
            ControlledStudyConfig(n_users=8, seed=321, engine="analytic")
        )
        slow = run_controlled_study(
            ControlledStudyConfig(n_users=8, seed=321, engine="loop")
        )
        assert len(fast.runs) == len(slow.runs)
        for a, b in zip(fast.runs, slow.runs):
            assert a == b, (a.run_id, a.outcome, b.outcome)

    def test_default_engine_is_analytic(self):
        assert ControlledStudyConfig().engine == "analytic"

    def test_unknown_engine_rejected(self):
        from repro.errors import StudyError

        with pytest.raises(StudyError):
            ControlledStudyConfig(engine="quantum")


def _user(threshold_mu, noise_prob, delay, seed, sigma=0.3, ramp_bonus=0.1):
    table = ToleranceTable(
        {
            ("word", Resource.CPU): ToleranceSpec(
                "word", Resource.CPU, p_react=0.9, mu=threshold_mu,
                sigma=sigma, ramp_bonus=ramp_bonus,
            )
        }
    )
    profile = sample_profile("eq-user", seed=seed)
    profile = type(profile)(
        user_id=profile.user_id,
        ratings=profile.ratings,
        tolerance_factor=profile.tolerance_factor,
        reaction_delay_mean=delay,
    )
    params = BehaviorParams(
        noise_prob_blank={"word": noise_prob}, noise_inrun_factor=0.5
    )
    return SimulatedUser(profile, table, params, seed=seed)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=8.0), min_size=1, max_size=100
    ),
    rate=st.sampled_from([0.5, 1.0, 3.0, 4.0]),
    mu=st.floats(min_value=-1.5, max_value=1.5),
    noise=st.floats(min_value=0.0, max_value=1.0),
    delay=st.floats(min_value=0.1, max_value=10.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_engines_identical(values, rate, mu, noise, delay, seed):
    """Random level series (dips included), thresholds, delays, and noise:
    both engines must emit the same run, trace for trace."""
    fn = ExerciseFunction(
        Resource.CPU, SampledSeries(rate, np.array(values)), "custom", {}
    )
    testcase = Testcase.single("eq", fn)
    machine = SimulatedMachine()
    task = get_task("word")
    model = machine.interactivity_model(task)
    monitor = SimulatedMonitor(machine, task)
    context = RunContext(user_id="eq-user", task="word")

    loop_result = run_simulated_session(
        testcase, _user(mu, noise, delay, seed), context, model,
        run_id="fixed", monitor=monitor,
    )
    analytic_result = run_analytic_session(
        testcase, _user(mu, noise, delay, seed), context, model,
        run_id="fixed", monitor=monitor,
    )
    a, b = loop_result.run, analytic_result.run
    assert a.outcome == b.outcome
    assert a.end_offset == b.end_offset
    if a.feedback is not None:
        assert a.feedback.source == b.feedback.source
        assert a.feedback.offset == b.feedback.offset
    assert a == b
    assert np.array_equal(
        loop_result.slowdown_trace, analytic_result.slowdown_trace
    )
    assert np.array_equal(
        loop_result.jitter_trace, analytic_result.jitter_trace
    )


@settings(max_examples=40, deadline=None)
@given(
    levels=st.dictionaries(
        st.sampled_from([Resource.CPU, Resource.MEMORY, Resource.DISK]),
        st.floats(min_value=0.0, max_value=1.0),
        min_size=1,
        max_size=3,
    ),
    task_name=st.sampled_from(["word", "powerpoint", "ie", "quake"]),
)
def test_property_batch_matches_scalar_interactivity(levels, task_name):
    """The vectorized machine paths are element-identical to scalars."""
    machine = SimulatedMachine()
    task = get_task(task_name)
    model = machine.interactivity_model(task)
    n = 7
    arrays = {r: np.full(n, v) for r, v in levels.items()}
    slow, jit = model.interactivity_batch(arrays, n)
    scalar = model.interactivity(levels)
    assert np.all(slow == scalar.slowdown)
    assert np.all(jit == scalar.jitter)
    cpu, mem, disk = machine.sample_load_batch(task, arrays, n)
    load = machine.sample_load(task, levels)
    assert np.all(cpu == load.cpu_utilization)
    assert np.all(mem == load.memory_used)
    assert np.all(disk == load.disk_utilization)
