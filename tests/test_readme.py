"""The README's code must stay runnable.

Extracts every ```python block from README.md and executes it; a stale
quickstart is a bug like any other.
"""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_readme_has_python_examples():
    assert python_blocks(), "README lost its quickstart code"


@pytest.mark.parametrize(
    "block", python_blocks(), ids=lambda b: b.strip().splitlines()[0][:40]
)
def test_readme_block_executes(block, capsys):
    exec(compile(block, "README.md", "exec"), {"__name__": "__readme__"})
    # The quickstart prints a run outcome.
    out = capsys.readouterr().out
    assert out.strip()


def test_readme_mentions_all_packages():
    text = README.read_text()
    import repro

    for sub in ("core", "exercisers", "machine", "apps", "users", "monitor",
                "stores", "server", "client", "study", "analysis",
                "throttle", "paperdata"):
        assert f"repro.{sub}" in text, f"README does not document repro.{sub}"


def test_readme_example_table_matches_disk():
    text = README.read_text()
    examples = pathlib.Path(__file__).parent.parent / "examples"
    for script in examples.glob("*.py"):
        assert script.name in text, f"{script.name} missing from README"
