"""Fleet simulation: byte-reproducibility, aggregation, CLI, telemetry."""

import json

import pytest

from repro.cli import main
from repro.errors import SchedulerError
from repro.scheduler import FleetConfig, Scoreboard, run_fleet, simulate_clients
from repro.scheduler.fleet import _merge_aggregates, _scoreboard
from repro.telemetry import Telemetry, use_telemetry

CONFIG = FleetConfig(policy="cdf", clients=24, epochs=8, seed=11, budget=0.1)


def run_cli(*args):
    return main(list(args))


class TestSimulateClients:
    def test_bad_range_rejected(self):
        with pytest.raises(SchedulerError, match="bad client range"):
            simulate_clients(CONFIG, 5, 3)
        with pytest.raises(SchedulerError, match="bad client range"):
            simulate_clients(CONFIG, 0, CONFIG.clients + 1)

    def test_split_equals_whole(self):
        """Client aggregates are shard-layout independent by construction."""
        whole = simulate_clients(CONFIG, 0, CONFIG.clients)
        split = _merge_aggregates(
            [
                simulate_clients(CONFIG, 0, 7),
                simulate_clients(CONFIG, 7, 16),
                simulate_clients(CONFIG, 16, CONFIG.clients),
            ]
        )
        assert whole == split

    def test_counts_are_consistent(self):
        board = _scoreboard(
            CONFIG, simulate_clients(CONFIG, 0, CONFIG.clients), 0.0
        )
        assert board.decisions > 0
        for cell in board.cells:
            assert cell.decisions == cell.admitted + cell.denials
            assert cell.discomforts <= cell.admitted
            assert cell.harvested_ms >= 0


class TestRunFleet:
    @pytest.mark.parametrize("policy", ["static", "aimd", "cdf"])
    def test_same_seed_same_json(self, policy):
        config = FleetConfig(policy=policy, clients=16, epochs=6, seed=3)
        assert run_fleet(config).to_json() == run_fleet(config).to_json()

    def test_sharded_byte_identical(self):
        baseline = run_fleet(CONFIG, shards=1).to_json()
        assert run_fleet(CONFIG, shards=3).to_json() == baseline
        assert run_fleet(CONFIG, shards=5, max_workers=2).to_json() == baseline

    def test_different_seed_differs(self):
        other = FleetConfig(
            policy="cdf", clients=24, epochs=8, seed=12, budget=0.1
        )
        assert run_fleet(CONFIG).to_json() != run_fleet(other).to_json()

    def test_elapsed_excluded_from_json(self):
        board = run_fleet(FleetConfig(policy="static", clients=4, epochs=2))
        assert board.elapsed_s > 0
        assert "elapsed" not in board.to_json()

    def test_bad_shards_rejected(self):
        with pytest.raises(SchedulerError, match="shards"):
            run_fleet(CONFIG, shards=0)

    def test_scoreboard_json_round_trips(self):
        board = run_fleet(CONFIG)
        data = json.loads(board.to_json())
        assert data["config"] == CONFIG.to_dict()
        assert data["totals"]["decisions"] == board.decisions
        assert data["totals"]["harvested_ms"] == board.harvested_ms
        assert len(data["cells"]) == len(board.cells)


class TestTelemetry:
    def test_disabled_telemetry_records_nothing(self):
        hub = Telemetry.disabled()
        with use_telemetry(hub):
            run_fleet(FleetConfig(policy="static", clients=4, epochs=2))
        assert hub.metrics.snapshot() == {}

    def test_enabled_telemetry_records_scoreboard(self):
        hub = Telemetry.in_memory()
        with use_telemetry(hub):
            board = run_fleet(CONFIG)
        snapshot = hub.metrics.snapshot()
        assert "uucs_sched_harvested_resource_seconds_total" in snapshot
        assert "uucs_sched_admission_denials_total" in snapshot
        assert "uucs_sched_ceiling" in snapshot
        harvested = sum(
            snapshot["uucs_sched_harvested_resource_seconds_total"][
                "value"
            ].values()
        )
        assert harvested == pytest.approx(board.harvested_ms / 1000.0, abs=0.01)
        recorded = hub.events.sink.events
        decisions = [e for e in recorded if e.name == "scheduler.decision"]
        assert len(decisions) == len(board.cells)
        assert any(
            e.name == "span" and e.fields.get("span") == "scheduler.fleet"
            for e in recorded
        )

    def test_telemetry_never_changes_the_scoreboard(self):
        silent = run_fleet(CONFIG).to_json()
        with use_telemetry(Telemetry()):
            loud = run_fleet(CONFIG).to_json()
        assert loud == silent


class TestHarvestCLI:
    def test_smoke_writes_scoreboard(self, tmp_path, capsys):
        out = tmp_path / "board.json"
        assert run_cli(
            "harvest", "--policy", "cdf", "--clients", "12", "--epochs", "4",
            "--budget", "0.1", "--seed", "7", "--out", str(out),
        ) == 0
        printed = capsys.readouterr().out
        assert "harvest[cdf]" in printed
        assert "resource-hours" in printed
        data = json.loads(out.read_text())
        assert data["config"]["policy"] == "cdf"
        assert data["config"]["seed"] == 7

    def test_shard_counts_byte_identical(self, tmp_path, capsys):
        boards = []
        for shards in ("1", "3"):
            out = tmp_path / f"board-{shards}.json"
            assert run_cli(
                "harvest", "--policy", "cdf", "--clients", "18",
                "--epochs", "4", "--seed", "5", "--shards", shards,
                "--out", str(out),
            ) == 0
            boards.append(out.read_bytes())
        capsys.readouterr()
        assert boards[0] == boards[1]

    def test_bad_budget_exits_scheduler_code(self, capsys):
        assert run_cli(
            "harvest", "--clients", "2", "--epochs", "1", "--budget", "7",
        ) == 12
        assert "error" in capsys.readouterr().err

    def test_telemetry_log_written(self, tmp_path, capsys):
        log = tmp_path / "telemetry.jsonl"
        assert run_cli(
            "harvest", "--policy", "static", "--clients", "4",
            "--epochs", "2", "--telemetry", str(log),
        ) == 0
        capsys.readouterr()
        from repro.telemetry import read_events

        names = {event.name for event in read_events(log)}
        assert "scheduler.decision" in names
