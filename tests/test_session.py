"""Tests for the session run loop (paper §2.3 semantics)."""

import pytest

from repro.core.exercise import blank, ramp, step
from repro.core.feedback import DiscomfortEvent, RunOutcome
from repro.core.resources import Resource
from repro.core.run import RunContext
from repro.core.session import (
    InteractivitySample,
    run_simulated_session,
)
from repro.core.testcase import Testcase
from repro.errors import ValidationError


class ScriptedFeedback:
    """Feedback source that fires at a fixed offset (or never)."""

    def __init__(self, fire_at=None, source="scripted"):
        self.fire_at = fire_at
        self.source = source
        self.began = 0
        self.polls = 0

    def begin_run(self, testcase, context):
        self.began += 1

    def poll(self, t, levels, interactivity):
        self.polls += 1
        if self.fire_at is not None and t >= self.fire_at:
            return DiscomfortEvent(offset=self.fire_at, levels=dict(levels),
                                   source=self.source)
        return None


class RecordingModel:
    def __init__(self):
        self.calls = 0

    def interactivity(self, levels):
        self.calls += 1
        return InteractivitySample(slowdown=1.0 + levels.get(Resource.CPU, 0.0))


def cpu_ramp_testcase(rate=1.0):
    return Testcase.single("t", ramp(Resource.CPU, 2.0, 120.0, rate))


class TestExhaustion:
    def test_exhausted_run(self):
        feedback = ScriptedFeedback(fire_at=None)
        result = run_simulated_session(
            cpu_ramp_testcase(), feedback, RunContext(user_id="u")
        )
        run = result.run
        assert run.outcome is RunOutcome.EXHAUSTED
        assert run.end_offset == 120.0
        assert run.feedback is None
        assert feedback.began == 1
        assert feedback.polls == 120

    def test_load_trace_full_length(self):
        result = run_simulated_session(
            cpu_ramp_testcase(), ScriptedFeedback(), RunContext(user_id="u")
        )
        assert len(result.slowdown_trace) == 120
        assert len(result.run.load_trace["contention_cpu"]) == 120


class TestDiscomfort:
    def test_stops_immediately_at_feedback(self):
        feedback = ScriptedFeedback(fire_at=45.0)
        result = run_simulated_session(
            cpu_ramp_testcase(), feedback, RunContext(user_id="u")
        )
        run = result.run
        assert run.outcome is RunOutcome.DISCOMFORT
        assert run.end_offset == pytest.approx(45.0)
        # Exercisers stop: trace only covers the executed prefix.
        assert len(result.slowdown_trace) == 46
        assert run.feedback.source == "scripted"

    def test_levels_recorded_at_feedback(self):
        result = run_simulated_session(
            cpu_ramp_testcase(), ScriptedFeedback(fire_at=60.0),
            RunContext(user_id="u"),
        )
        expected = cpu_ramp_testcase().levels_at(60.0)[Resource.CPU]
        assert result.run.levels_at_end[Resource.CPU] == pytest.approx(expected)

    def test_last_five_values_recorded(self):
        result = run_simulated_session(
            cpu_ramp_testcase(), ScriptedFeedback(fire_at=60.0),
            RunContext(user_id="u"),
        )
        assert len(result.run.last_values[Resource.CPU]) == 5

    def test_feedback_offset_clamped_into_sample(self):
        class EarlyReporter(ScriptedFeedback):
            def poll(self, t, levels, interactivity):
                if t >= 10.0:
                    # Claims an offset far in the past; the session clamps.
                    return DiscomfortEvent(offset=0.0, levels={})
                return None

        result = run_simulated_session(
            cpu_ramp_testcase(), EarlyReporter(), RunContext(user_id="u")
        )
        assert result.run.end_offset >= 10.0


class TestInteractivityModel:
    def test_model_consulted_every_step(self):
        model = RecordingModel()
        run_simulated_session(
            cpu_ramp_testcase(), ScriptedFeedback(), RunContext(user_id="u"),
            model,
        )
        assert model.calls == 120

    def test_slowdown_trace_reflects_model(self):
        model = RecordingModel()
        result = run_simulated_session(
            cpu_ramp_testcase(), ScriptedFeedback(), RunContext(user_id="u"),
            model,
        )
        assert result.slowdown_trace[0] == pytest.approx(1.0)
        assert result.slowdown_trace[-1] > 2.9

    def test_default_model_unimpeded(self):
        result = run_simulated_session(
            cpu_ramp_testcase(), ScriptedFeedback(), RunContext(user_id="u")
        )
        assert set(result.slowdown_trace) == {1.0}


class TestSampleValidation:
    def test_interactivity_sample_bounds(self):
        with pytest.raises(ValidationError):
            InteractivitySample(slowdown=0.5)
        with pytest.raises(ValidationError):
            InteractivitySample(jitter=1.5)

    def test_blank_testcase_runs(self):
        tc = Testcase.single("b", blank(Resource.CPU, 30.0))
        result = run_simulated_session(
            tc, ScriptedFeedback(), RunContext(user_id="u")
        )
        assert result.run.exhausted

    def test_step_records_plateau_level(self):
        tc = Testcase.single("s", step(Resource.CPU, 2.0, 120.0, 40.0))
        result = run_simulated_session(
            tc, ScriptedFeedback(fire_at=80.0), RunContext(user_id="u")
        )
        assert result.run.levels_at_end[Resource.CPU] == 2.0

    def test_run_id_passthrough(self):
        result = run_simulated_session(
            cpu_ramp_testcase(), ScriptedFeedback(), RunContext(user_id="u"),
            run_id="fixed-id",
        )
        assert result.run.run_id == "fixed-id"
