"""Tests for building CDFs from study runs."""

import pytest

from repro.analysis.cdf import (
    aggregate_cdf,
    is_blank_run,
    observations_from_runs,
    per_cell_cdf,
    split_blank_runs,
)
from repro.core.resources import Resource
from repro.errors import InsufficientDataError


class TestSplitting:
    def test_split_blank(self, study_runs):
        non_blank, blank = split_blank_runs(study_runs)
        assert len(non_blank) + len(blank) == len(study_runs)
        assert all(is_blank_run(r) for r in blank)
        assert not any(is_blank_run(r) for r in non_blank)
        # 2 of 8 testcases per task are blank.
        assert len(blank) == len(study_runs) // 4


class TestObservations:
    def test_default_ramps_only(self, study_runs):
        obs = observations_from_runs(study_runs, resource=Resource.CPU)
        assert all(o.shape == "ramp" for o in obs)
        assert all(o.resource is Resource.CPU for o in obs)
        # One CPU ramp per (user, task): 33 users x 4 tasks.
        assert len(obs) == 33 * 4

    def test_all_shapes(self, study_runs):
        obs = observations_from_runs(
            study_runs, resource=Resource.CPU, shapes=None
        )
        assert {o.shape for o in obs} == {"ramp", "step"}
        assert len(obs) == 33 * 4 * 2

    def test_task_filter(self, study_runs):
        obs = observations_from_runs(
            study_runs, resource=Resource.DISK, task="ie"
        )
        assert all(o.task == "ie" for o in obs)
        assert len(obs) == 33

    def test_blank_runs_excluded(self, study_runs):
        obs = observations_from_runs(study_runs, shapes=None)
        assert len(obs) == 33 * 4 * 6  # 6 non-blank testcases per task

    def test_censoring_levels(self, study_runs):
        obs = observations_from_runs(study_runs, resource=Resource.CPU)
        for o in obs:
            assert o.level >= 0
            if o.censored:
                # Exhausted ramps are censored at (near) the ramp max.
                assert o.level > 0


class TestCdfBuilders:
    def test_aggregate(self, study_runs):
        cdf = aggregate_cdf(study_runs, Resource.CPU)
        assert cdf.n == 33 * 4
        assert 0 < cdf.f_d() < 1

    def test_per_cell(self, study_runs):
        cdf = per_cell_cdf(study_runs, "quake", Resource.CPU)
        assert cdf.n == 33

    def test_empty_cell_raises(self, study_runs):
        with pytest.raises(InsufficientDataError):
            per_cell_cdf(study_runs, "emacs", Resource.CPU)
        with pytest.raises(InsufficientDataError):
            aggregate_cdf(study_runs, Resource.NETWORK)
