"""Tests for the real resource exercisers.

These run *live* but briefly: tiny durations, small pools/files.  Fidelity
measurement (does contention c slow a victim to 1/(1+c)?) lives in the
benchmarks, where timing noise is expected; here we verify lifecycle,
duty-cycle logic, and observable side effects.
"""

import time

import pytest

from repro.core.exercise import ramp
from repro.core.resources import Resource
from repro.errors import CalibrationError, ExerciserError
from repro.exercisers import (
    CPUExerciser,
    DiskExerciser,
    MemoryExerciser,
    calibrate_spin,
    play,
)
from repro.exercisers.calibration import CalibrationResult, spin_for


@pytest.fixture(scope="module")
def calibration():
    return calibrate_spin(trials=3, trial_iterations=100_000)


class TestCalibration:
    def test_measures_positive_rate(self, calibration):
        assert calibration.iterations_per_ms > 100
        assert calibration.spread >= 0.0

    def test_iterations_for(self, calibration):
        assert calibration.iterations_for(0.01) == pytest.approx(
            calibration.iterations_per_ms * 10, rel=0.01
        )
        assert calibration.iterations_for(0.0) == 1

    def test_spin_for_duration(self, calibration):
        start = time.perf_counter()
        spin_for(0.03, calibration)
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.03
        assert elapsed < 0.3  # generous: shared CI machines stall

    def test_validation(self):
        with pytest.raises(CalibrationError):
            calibrate_spin(trials=0)
        with pytest.raises(CalibrationError):
            calibrate_spin(trial_iterations=10)


class TestCPUExerciser:
    def test_lifecycle(self, calibration):
        ex = CPUExerciser(calibration=calibration, max_workers=2)
        assert not ex.running
        with ex:
            assert ex.running
            ex.set_level(1.5)
            assert ex.level == 1.5
            time.sleep(0.05)
        assert not ex.running
        ex.stop()  # idempotent

    def test_duty_cycles_split_across_workers(self, calibration):
        ex = CPUExerciser(calibration=calibration, max_workers=3)
        ex.set_level(1.5)
        assert list(ex._duties) == [1.0, 0.5, 0.0]
        ex.set_level(0.25)
        assert list(ex._duties) == [0.25, 0.0, 0.0]

    def test_level_exceeding_workers_rejected(self, calibration):
        ex = CPUExerciser(calibration=calibration, max_workers=1)
        with pytest.raises(ExerciserError):
            ex.set_level(2.0)

    def test_double_start_rejected(self, calibration):
        with CPUExerciser(calibration=calibration, max_workers=1) as ex:
            with pytest.raises(ExerciserError):
                ex.start()

    def test_bad_params(self, calibration):
        with pytest.raises(ExerciserError):
            CPUExerciser(subinterval=0.0, calibration=calibration)
        with pytest.raises(ExerciserError):
            CPUExerciser(calibration=calibration, max_workers=0)


class TestMemoryExerciser:
    def test_touches_accumulate(self):
        with MemoryExerciser(pool_bytes=4 * 1024 * 1024,
                             touch_interval=0.01) as ex:
            ex.set_level(0.5)
            time.sleep(0.15)
            assert ex.touches >= 3

    def test_zero_level_touches_nothing(self):
        ex = MemoryExerciser(pool_bytes=1024 * 1024, touch_interval=0.01)
        with ex:
            time.sleep(0.05)
        # Sweeps at level 0 do not count as touches.
        assert ex.touches == 0

    def test_pool_released_on_stop(self):
        ex = MemoryExerciser(pool_bytes=1024 * 1024)
        ex.start()
        assert ex._pool is not None
        ex.stop()
        assert ex._pool is None

    def test_level_validation(self):
        ex = MemoryExerciser(pool_bytes=1024 * 1024)
        with pytest.raises(Exception):
            ex.set_level(1.5)

    def test_bad_params(self):
        with pytest.raises(ExerciserError):
            MemoryExerciser(pool_bytes=100)
        with pytest.raises(ExerciserError):
            MemoryExerciser(touch_interval=0.0)


class TestDiskExerciser:
    def test_writes_happen_and_file_cleaned(self, tmp_path):
        ex = DiskExerciser(
            file_size=1024 * 1024, directory=tmp_path, subinterval=0.01,
            max_write=16 * 1024, max_workers=2,
        )
        with ex:
            ex.set_level(2.0)
            time.sleep(0.25)
            assert ex.writes > 0
            assert ex.bytes_written > 0
            assert list(tmp_path.glob("uucs-disk-*"))
        assert not list(tmp_path.glob("uucs-disk-*"))

    def test_zero_level_writes_nothing(self, tmp_path):
        with DiskExerciser(file_size=1024 * 1024, directory=tmp_path,
                           subinterval=0.01, max_workers=1) as ex:
            time.sleep(0.1)
            assert ex.writes == 0

    def test_bad_params(self, tmp_path):
        with pytest.raises(ExerciserError):
            DiskExerciser(file_size=1024, max_write=64 * 1024)
        with pytest.raises(ExerciserError):
            DiskExerciser(subinterval=0.0)


class TestPlayback:
    def test_plays_whole_function(self):
        ex = MemoryExerciser(pool_bytes=1024 * 1024, touch_interval=0.005)
        fn = ramp(Resource.MEMORY, 1.0, 10.0, sample_rate=2.0)
        with ex:
            offset = play(fn, ex, speed=200.0)
        assert offset == 10.0
        assert ex.level == 0.0  # released at end

    def test_stop_callback_interrupts(self):
        ex = MemoryExerciser(pool_bytes=1024 * 1024)
        fn = ramp(Resource.MEMORY, 1.0, 10.0, sample_rate=2.0)
        with ex:
            offset = play(fn, ex, speed=200.0, should_stop=lambda t: t >= 5.0)
        assert offset == 5.0
        assert ex.level == 0.0

    def test_resource_mismatch(self):
        ex = MemoryExerciser(pool_bytes=1024 * 1024)
        fn = ramp(Resource.CPU, 1.0, 10.0)
        with pytest.raises(ExerciserError):
            play(fn, ex)

    def test_bad_speed(self):
        ex = MemoryExerciser(pool_bytes=1024 * 1024)
        fn = ramp(Resource.MEMORY, 1.0, 10.0)
        with pytest.raises(ExerciserError):
            play(fn, ex, speed=0.0)
