"""Tests for repro.core.resources."""

import pytest

from repro.core.resources import (
    CONTENTION_LIMITS,
    VERIFIED_LIMITS,
    Resource,
    validate_contention,
)
from repro.errors import ValidationError


class TestResource:
    def test_parse_case_insensitive(self):
        assert Resource.parse("CPU") is Resource.CPU
        assert Resource.parse(" memory ") is Resource.MEMORY

    def test_parse_unknown(self):
        with pytest.raises(ValidationError):
            Resource.parse("gpu")

    def test_str_is_value(self):
        assert str(Resource.DISK) == "disk"

    def test_network_not_studied(self):
        assert not Resource.NETWORK.studied
        assert all(
            r.studied for r in (Resource.CPU, Resource.MEMORY, Resource.DISK)
        )


class TestLimits:
    def test_verified_limits_match_paper(self):
        # §2.2: CPU verified to 10, disk to 7; memory capped at 1.
        assert VERIFIED_LIMITS[Resource.CPU] == 10.0
        assert VERIFIED_LIMITS[Resource.DISK] == 7.0
        assert VERIFIED_LIMITS[Resource.MEMORY] == 1.0

    def test_hard_caps_cover_study_parameters(self):
        # Figure 8's Powerpoint disk ramp reaches 8.0.
        assert CONTENTION_LIMITS[Resource.DISK] >= 8.0
        assert CONTENTION_LIMITS[Resource.CPU] >= 10.0
        assert CONTENTION_LIMITS[Resource.MEMORY] == 1.0

    def test_validate_contention(self):
        assert validate_contention(Resource.CPU, 5.0) == 5.0
        with pytest.raises(ValidationError):
            validate_contention(Resource.CPU, -1.0)
        with pytest.raises(ValidationError):
            validate_contention(Resource.MEMORY, 1.5)
        with pytest.raises(ValidationError):
            validate_contention(Resource.CPU, float("nan"))
