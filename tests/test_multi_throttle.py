"""Tests for the multi-resource discomfort-budget throttle."""

import pytest

from repro.analysis.cdf import aggregate_cdf
from repro.core.resources import Resource
from repro.errors import ThrottleError
from repro.throttle import MultiResourceThrottle

RESOURCES = (Resource.CPU, Resource.MEMORY, Resource.DISK)


@pytest.fixture(scope="module")
def cdfs(controlled_study):
    runs = list(controlled_study.runs)
    return {r: aggregate_cdf(runs, r) for r in RESOURCES}


class TestBudgetSplit:
    def test_equal_weights_split_budget(self, cdfs):
        multi = MultiResourceThrottle(cdfs, total_budget=0.06)
        for resource in RESOURCES:
            assert multi.budget_for(resource) == pytest.approx(0.02)

    def test_weighted_allocation(self, cdfs):
        multi = MultiResourceThrottle(
            cdfs, total_budget=0.06,
            weights={Resource.CPU: 4.0, Resource.MEMORY: 1.0,
                     Resource.DISK: 1.0},
        )
        assert multi.budget_for(Resource.CPU) == pytest.approx(0.04)
        assert multi.budget_for(Resource.MEMORY) == pytest.approx(0.01)

    def test_tighter_budget_lower_ceilings(self, cdfs):
        loose = MultiResourceThrottle(cdfs, total_budget=0.15)
        tight = MultiResourceThrottle(cdfs, total_budget=0.03)
        for resource in RESOURCES:
            assert (
                tight.throttle(resource).ceiling
                <= loose.throttle(resource).ceiling + 1e-9
            )

    def test_union_bound_respected(self, cdfs):
        multi = MultiResourceThrottle(cdfs, total_budget=0.06)
        assert multi.expected_discomfort_bound(cdfs) <= 0.06 + 1e-9

    def test_naive_per_resource_policy_overspends(self, cdfs):
        """Setting every resource to the 5% level (the naive reading of
        §5) spends ~3x the intended budget — the motivation for this
        class."""
        naive = MultiResourceThrottle(
            cdfs, total_budget=0.15  # equal split => 5% each
        )
        assert naive.expected_discomfort_bound(cdfs) > 0.06


class TestGrant:
    def test_grant_clamps_each_resource(self, cdfs):
        multi = MultiResourceThrottle(cdfs, total_budget=0.06)
        granted = multi.grant({r: 100.0 for r in RESOURCES})
        for resource in RESOURCES:
            assert granted[resource] == multi.throttle(resource).ceiling
        # Memory stays within its envelope regardless of budget.
        assert granted[Resource.MEMORY] <= 1.0

    def test_unknown_resource_rejected(self, cdfs):
        multi = MultiResourceThrottle(
            {Resource.CPU: cdfs[Resource.CPU]}, total_budget=0.05
        )
        with pytest.raises(ThrottleError):
            multi.grant({Resource.DISK: 1.0})
        with pytest.raises(ThrottleError):
            multi.budget_for(Resource.DISK)


class TestValidation:
    def test_bad_budget(self, cdfs):
        with pytest.raises(ThrottleError):
            MultiResourceThrottle(cdfs, total_budget=0.0)
        with pytest.raises(ThrottleError):
            MultiResourceThrottle(cdfs, total_budget=1.0)

    def test_empty(self):
        with pytest.raises(ThrottleError):
            MultiResourceThrottle({}, total_budget=0.05)

    def test_bad_weights(self, cdfs):
        with pytest.raises(ThrottleError):
            MultiResourceThrottle(
                cdfs, weights={Resource.CPU: 1.0}  # missing others
            )
        with pytest.raises(ThrottleError):
            MultiResourceThrottle(
                cdfs, weights={r: 0.0 for r in RESOURCES}
            )
