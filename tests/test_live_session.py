"""Tests for the live (real-exerciser) session runner.

Uses tiny memory pools and accelerated playback so runs finish in well
under a second while still exercising the real threads and exercisers.
"""

import itertools

import pytest

from repro.core import Resource, ramp, RunContext
from repro.core.feedback import RunOutcome
from repro.core.testcase import Testcase
from repro.errors import ExerciserError
from repro.exercisers import LiveSessionConfig, MemoryExerciser, run_live_session
from repro.exercisers.session import default_factory
from repro.monitor import ProcfsMonitor


def tiny_factory(resource):
    assert resource is Resource.MEMORY
    return MemoryExerciser(pool_bytes=2 * 1024 * 1024, touch_interval=0.005)


def memory_testcase(duration=20.0):
    return Testcase.single(
        "live-mem", ramp(Resource.MEMORY, 1.0, duration, 2.0)
    )


def config(speed=100.0, monitor_rate=0.0):
    return LiveSessionConfig(
        speed=speed, monitor_rate=monitor_rate, factory=tiny_factory
    )


class TestExhaustion:
    def test_full_playback(self):
        run = run_live_session(
            memory_testcase(), RunContext(user_id="u"), lambda: False,
            config=config(),
        )
        assert run.outcome is RunOutcome.EXHAUSTED
        assert run.end_offset == 20.0
        assert run.shapes[Resource.MEMORY] == "ramp"

    def test_monitor_records_load(self):
        run = run_live_session(
            memory_testcase(), RunContext(user_id="u"), lambda: False,
            monitor=ProcfsMonitor(),
            config=config(monitor_rate=2.0),
        )
        assert "load_cpu" in run.load_trace
        assert len(run.load_trace["load_cpu"]) >= 1


class TestDiscomfort:
    def test_feedback_stops_immediately(self):
        counter = itertools.count()
        run = run_live_session(
            memory_testcase(), RunContext(user_id="u"),
            lambda: next(counter) > 10,
            config=config(),
        )
        assert run.outcome is RunOutcome.DISCOMFORT
        assert run.end_offset < 20.0
        assert run.feedback is not None
        assert run.feedback.source == "live"
        assert run.levels_at_end[Resource.MEMORY] == pytest.approx(
            memory_testcase().levels_at(run.end_offset)[Resource.MEMORY]
        )

    def test_immediate_feedback(self):
        run = run_live_session(
            memory_testcase(), RunContext(user_id="u"), lambda: True,
            config=config(),
        )
        assert run.discomforted
        assert run.end_offset == 0.0


class TestConfig:
    def test_bad_speed(self):
        with pytest.raises(ExerciserError):
            run_live_session(
                memory_testcase(), RunContext(user_id="u"), lambda: False,
                config=LiveSessionConfig(speed=0.0, factory=tiny_factory),
            )

    def test_default_factory_rejects_network(self):
        factory = default_factory()
        with pytest.raises(ExerciserError):
            factory(Resource.NETWORK)

    def test_run_id_passthrough(self):
        run = run_live_session(
            memory_testcase(5.0), RunContext(user_id="u"), lambda: False,
            config=config(), run_id="fixed",
        )
        assert run.run_id == "fixed"


class TestFeedbackChannels:
    def test_callback_channel(self):
        from repro.exercisers import CallbackChannel

        channel = CallbackChannel()
        assert not channel()
        channel.trigger()
        assert channel()
        assert channel.triggers == 1
        channel.reset()
        assert not channel()

    def test_callback_channel_in_live_session(self):
        import threading

        from repro.exercisers import CallbackChannel

        channel = CallbackChannel()
        timer = threading.Timer(0.05, channel.trigger)
        timer.start()
        try:
            run = run_live_session(
                memory_testcase(60.0), RunContext(user_id="u"), channel,
                config=config(speed=50.0),
            )
        finally:
            timer.cancel()
        assert run.discomforted

    def test_timed_channel(self):
        import time

        from repro.exercisers import TimedChannel

        channel = TimedChannel(after=0.05)
        assert not channel()
        time.sleep(0.06)
        assert channel()

    def test_timed_channel_validation(self):
        from repro.exercisers import TimedChannel

        with pytest.raises(ExerciserError):
            TimedChannel(after=-1.0)

    def test_keypress_channel_with_pipe(self):
        import os

        from repro.exercisers import KeyPressChannel

        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "r")
        try:
            channel = KeyPressChannel(stream=reader)
            assert not channel()
            os.write(write_fd, b"x")
            assert channel()
            assert channel()  # latched
        finally:
            reader.close()
            os.close(write_fd)

    def test_keypress_specific_key(self):
        import os

        from repro.exercisers import KeyPressChannel

        read_fd, write_fd = os.pipe()
        reader = os.fdopen(read_fd, "r")
        try:
            channel = KeyPressChannel(key="q", stream=reader)
            os.write(write_fd, b"a")
            assert not channel()
            os.write(write_fd, b"q")
            assert channel()
        finally:
            reader.close()
            os.close(write_fd)

    def test_keypress_requires_tty(self):
        import io

        from repro.exercisers import KeyPressChannel

        class NotTty(io.StringIO):
            def isatty(self):
                return False

        import contextlib

        with contextlib.redirect_stdout(io.StringIO()):
            with pytest.raises(ExerciserError):
                # Patch stdin to a non-tty object.
                import sys

                old = sys.stdin
                sys.stdin = NotTty()
                try:
                    KeyPressChannel()
                finally:
                    sys.stdin = old

    def test_keypress_bad_key(self):
        from repro.exercisers import KeyPressChannel

        with pytest.raises(ExerciserError):
            KeyPressChannel(key="esc", stream=__import__("io").StringIO())


class TestMultiResourceLive:
    def test_memory_and_disk_together(self, tmp_path):
        from repro.core import merge
        from repro.core.exercise import constant
        from repro.exercisers import DiskExerciser

        def factory(resource):
            if resource is Resource.MEMORY:
                return MemoryExerciser(
                    pool_bytes=2 * 1024 * 1024, touch_interval=0.005
                )
            if resource is Resource.DISK:
                return DiskExerciser(
                    file_size=1024 * 1024, directory=tmp_path,
                    subinterval=0.01, max_write=16 * 1024, max_workers=2,
                )
            raise AssertionError(resource)

        testcase = merge(
            Testcase.single("m", constant(Resource.MEMORY, 0.5, 10.0, 2.0)),
            Testcase.single("d", constant(Resource.DISK, 2.0, 10.0, 2.0)),
            new_id="combo",
        )
        run = run_live_session(
            testcase, RunContext(user_id="u"), lambda: False,
            config=LiveSessionConfig(speed=40.0, factory=factory),
        )
        assert run.exhausted
        assert set(run.shapes) == {Resource.MEMORY, Resource.DISK}
        # Both exercisers actually played their functions to completion.
        assert run.end_offset == 10.0

    def test_feedback_stops_both_exercisers(self, tmp_path):
        from repro.core import merge
        from repro.core.exercise import constant
        from repro.exercisers import DiskExerciser

        built = {}

        def factory(resource):
            if resource is Resource.MEMORY:
                ex = MemoryExerciser(pool_bytes=1024 * 1024)
            else:
                ex = DiskExerciser(
                    file_size=1024 * 1024, directory=tmp_path,
                    subinterval=0.01, max_workers=1,
                )
            built[resource] = ex
            return ex

        testcase = merge(
            Testcase.single("m", constant(Resource.MEMORY, 0.5, 30.0, 2.0)),
            Testcase.single("d", constant(Resource.DISK, 1.0, 30.0, 2.0)),
            new_id="combo",
        )
        counter = itertools.count()
        run = run_live_session(
            testcase, RunContext(user_id="u"), lambda: next(counter) > 5,
            config=LiveSessionConfig(speed=40.0, factory=factory),
        )
        assert run.discomforted
        # "Resource borrowing stops immediately": everything released.
        for exerciser in built.values():
            assert not exerciser.running
