"""Tests for the shard supervisor: retry, watchdog, quarantine, chaos.

Every scenario here is deterministic: the chaos seeds were chosen so the
seeded dice produce a known fault schedule (e.g. "shard 0 is killed on
attempt 1 and clean on attempt 2"), and each test asserts that schedule
before relying on it.  The contract under test is the ISSUE's: whatever
the supervisor has to do to finish a study — retries, watchdog kills,
respawns — the surviving output must be byte-identical to a run where
nothing went wrong.
"""

import multiprocessing
import time

import pytest

from repro.errors import StudyError, ValidationError
from repro.faults import ShardAttemptFaults, ShardFaultPlan
from repro.study import (
    ControlledStudyConfig,
    SupervisorPolicy,
    run_controlled_study,
    run_sharded_study,
)
from shardcheck import serialized_records

#: Small config shared by the end-to-end supervisor runs.
SMALL = ControlledStudyConfig(n_users=2, seed=5, tasks=("word",))

#: Fast backoff so retry tests don't sit in sleep().
FAST = dict(base_delay=0.01, max_delay=0.05)


class TestShardAttemptFaults:
    def test_default_is_clean(self):
        assert not ShardAttemptFaults().any

    def test_any_fault_flags(self):
        assert ShardAttemptFaults(kill_after_runs=3).any
        assert ShardAttemptFaults(hang_s=1.0).any
        assert ShardAttemptFaults(corrupt=True).any


class TestShardFaultPlan:
    def test_default_plan_inactive(self):
        plan = ShardFaultPlan()
        assert not plan.active
        assert not plan.worker_faults(0, 1).any
        assert not plan.driver_sigint(1)

    def test_parse_single_and_compound(self):
        plan = ShardFaultPlan.parse("kill=0.5,kill_after_runs=2", seed=9)
        assert plan.kill == 0.5
        assert plan.kill_after_runs == 2
        assert plan.seed == 9
        assert plan.active

    def test_parse_hyphen_alias_and_hang(self):
        plan = ShardFaultPlan.parse("kill=1.0,kill-after-runs=7,hang_s=0.5")
        assert plan.kill_after_runs == 7
        assert plan.hang_s == 0.5

    def test_parse_all_fans_out(self):
        plan = ShardFaultPlan.parse("all=0.25")
        assert (plan.kill, plan.hang, plan.corrupt, plan.sigint) == (
            0.25, 0.25, 0.25, 0.25,
        )

    @pytest.mark.parametrize("spec", [
        "kill",                 # missing =VALUE
        "explode=0.5",          # unknown knob
        "kill=maybe",           # not a number
        "kill=1.5",             # probability out of range
        "kill_after_runs=-1",   # negative run count
        "hang_s=-2",            # negative stall
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValidationError):
            ShardFaultPlan.parse(spec)

    def test_worker_faults_deterministic_per_shard_attempt(self):
        plan = ShardFaultPlan(kill=0.5, hang=0.5, corrupt=0.5, seed=11)
        assert plan.worker_faults(0, 1) == plan.worker_faults(0, 1)
        assert plan.worker_faults(1, 2) == plan.worker_faults(1, 2)

    def test_retrying_one_shard_never_shifts_another(self):
        # Shard 1's schedule is a function of (seed, shard, attempt)
        # only — however many times shard 0 is retried, shard 1 attempt
        # 1 rolls the same dice.
        plan = ShardFaultPlan(kill=0.5, hang=0.5, corrupt=0.5, seed=3)
        before = [plan.worker_faults(1, a) for a in (1, 2, 3)]
        for _ in range(5):
            plan.worker_faults(0, 1)  # "retry" shard 0
        assert [plan.worker_faults(1, a) for a in (1, 2, 3)] == before

    def test_driver_sigint_deterministic(self):
        plan = ShardFaultPlan(sigint=0.5, seed=4)
        rolls = [plan.driver_sigint(n) for n in range(1, 20)]
        assert rolls == [plan.driver_sigint(n) for n in range(1, 20)]
        assert any(rolls) and not all(rolls)  # a real coin, seeded

    def test_certain_sigint_always_fires(self):
        plan = ShardFaultPlan(sigint=1.0)
        assert all(plan.driver_sigint(n) for n in range(1, 10))

    def test_probability_validation_on_construction(self):
        with pytest.raises(ValidationError):
            ShardFaultPlan(kill=-0.1)
        with pytest.raises(ValidationError):
            ShardFaultPlan(sigint=2.0)


class TestSupervisorPolicy:
    def test_defaults_valid(self):
        policy = SupervisorPolicy()
        assert policy.max_attempts == 3
        assert policy.quarantine is True
        assert policy.watchdog_s is None

    @pytest.mark.parametrize("watchdog_s", [0.0, -1.0])
    def test_watchdog_must_be_positive(self, watchdog_s):
        with pytest.raises(StudyError):
            SupervisorPolicy(watchdog_s=watchdog_s)

    def test_invalid_retry_shape_wrapped_as_study_error(self):
        with pytest.raises(StudyError):
            SupervisorPolicy(max_attempts=0)
        with pytest.raises(StudyError):
            SupervisorPolicy(base_delay=-1.0)

    def test_backoff_grows_and_caps_without_jitter(self):
        policy = SupervisorPolicy(
            base_delay=0.1, max_delay=0.4, multiplier=2.0, jitter=0.0
        )
        rng = None  # jitter=0 must not touch the RNG
        delays = [policy.backoff(f, rng) for f in (1, 2, 3, 4, 5)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert all(d <= 0.4 + 1e-9 for d in delays)
        assert delays[-1] == pytest.approx(0.4)


class TestSupervisedStudy:
    """End-to-end supervised runs under seeded chaos.

    Each chaos seed below was picked so that (for 2 shards) at least one
    shard faults on attempt 1 and every shard is clean by attempt 2 —
    asserted up front so a dice-stream change fails loudly here instead
    of turning the test into a no-op.
    """

    def _baseline(self):
        return serialized_records(run_controlled_study(SMALL))

    def test_killed_worker_is_retried_to_byte_identical_output(self):
        plan = ShardFaultPlan(kill=0.6, kill_after_runs=2, seed=7)
        assert any(plan.worker_faults(s, 1).any for s in range(2))
        assert not any(plan.worker_faults(s, 2).any for s in range(2))
        result = run_sharded_study(
            SMALL, shards=2, chaos=plan,
            supervisor=SupervisorPolicy(
                max_attempts=4, quarantine=False, **FAST
            ),
        )
        assert serialized_records(result) == self._baseline()
        assert result.quarantined == ()

    def test_hung_worker_reclaimed_by_watchdog(self):
        plan = ShardFaultPlan(hang=0.5, hang_s=3600.0, seed=1)
        assert any(plan.worker_faults(s, 1).any for s in range(2))
        assert not any(plan.worker_faults(s, 2).any for s in range(2))
        result = run_sharded_study(
            SMALL, shards=2, chaos=plan,
            supervisor=SupervisorPolicy(
                max_attempts=4, quarantine=False, watchdog_s=1.0, **FAST
            ),
        )
        assert serialized_records(result) == self._baseline()

    def test_corrupt_batch_detected_and_retried(self):
        plan = ShardFaultPlan(corrupt=0.6, seed=1)
        assert any(plan.worker_faults(s, 1).any for s in range(2))
        assert not any(plan.worker_faults(s, 2).any for s in range(2))
        result = run_sharded_study(
            SMALL, shards=2, chaos=plan,
            supervisor=SupervisorPolicy(
                max_attempts=4, quarantine=False, **FAST
            ),
        )
        assert serialized_records(result) == self._baseline()

    def test_exhausted_shards_quarantined_into_partial_result(self):
        # corrupt=1.0 damages every attempt of every shard: with
        # quarantine on, the study completes *partially* and names the
        # shards it gave up on.
        result = run_sharded_study(
            SMALL, shards=2, chaos=ShardFaultPlan(corrupt=1.0),
            supervisor=SupervisorPolicy(max_attempts=2, **FAST),
        )
        assert result.quarantined == (0, 1)
        assert result.runs == ()
        assert len(result.profiles) == SMALL.n_users

    def test_quarantine_false_raises_instead(self):
        with pytest.raises(StudyError):
            run_sharded_study(
                SMALL, shards=2, chaos=ShardFaultPlan(corrupt=1.0),
                supervisor=SupervisorPolicy(
                    max_attempts=2, quarantine=False, **FAST
                ),
            )

    def test_persistent_hang_quarantined_via_watchdog(self):
        result = run_sharded_study(
            SMALL, shards=2,
            chaos=ShardFaultPlan(hang=1.0, hang_s=3600.0),
            supervisor=SupervisorPolicy(
                max_attempts=2, watchdog_s=0.3, **FAST
            ),
        )
        assert result.quarantined == (0, 1)
        assert result.runs == ()

    def test_driver_interrupt_terminates_workers(self):
        # Satellite: KeyboardInterrupt mid-study must not leak worker
        # processes.  sigint=1.0 interrupts right after the first shard
        # completes, while the other worker is typically still running.
        with pytest.raises(KeyboardInterrupt):
            run_sharded_study(
                SMALL, shards=2, chaos=ShardFaultPlan(sigint=1.0),
                supervisor=SupervisorPolicy(**FAST),
            )
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = [
                p for p in multiprocessing.active_children()
                if p.name.startswith("uucs-shard")
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"worker processes leaked: {leaked}"

    def test_resume_requires_checkpoint(self):
        with pytest.raises(StudyError):
            run_sharded_study(SMALL, shards=2, resume=True)

    def test_plain_unsupervised_path_untouched_by_default(self):
        # No supervisor/chaos/checkpoint: shards=1 must still take the
        # in-process path and produce the canonical records.
        result = run_sharded_study(SMALL, shards=1)
        assert serialized_records(result) == self._baseline()
        assert result.quarantined == ()
