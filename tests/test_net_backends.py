"""Backend-parity tests for repro.net: every registered server backend
must serve the same protocol through the shared dispatcher, enforce the
connection limit with backpressure, and release its port on every
shutdown path — including exception paths."""

import socket
import threading
import time

import pytest

from repro.core.exercise import constant
from repro.core.resources import Resource
from repro.core.testcase import Testcase
from repro.errors import ValidationError
from repro.net import (
    SERVER_BACKENDS,
    AsyncioServerTransport,
    default_backend,
    get_server_backend,
    serve_transport,
)
from repro.server import Message, TCPServerTransport, UUCSServer
from repro.telemetry import Telemetry

BACKENDS = sorted(SERVER_BACKENDS)


def tc(tcid):
    return Testcase.single(tcid, constant(Resource.CPU, 1.0, 10.0))


def make_server(tmp_path, telemetry=None):
    server = UUCSServer(tmp_path / "server", seed=1, telemetry=telemetry)
    server.add_testcases([tc("a"), tc("b")])
    return server


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestRegistry:
    def test_names_map_to_transports(self):
        assert SERVER_BACKENDS["threading"] is TCPServerTransport
        assert SERVER_BACKENDS["asyncio"] is AsyncioServerTransport

    def test_default_is_threading(self, monkeypatch):
        monkeypatch.delenv("UUCS_SERVER_BACKEND", raising=False)
        assert default_backend() == "threading"
        assert get_server_backend() is TCPServerTransport

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("UUCS_SERVER_BACKEND", "asyncio")
        assert default_backend() == "asyncio"
        assert get_server_backend() is AsyncioServerTransport
        # An explicit name still beats the environment.
        assert get_server_backend("threading") is TCPServerTransport

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown server backend"):
            get_server_backend("carrier-pigeon")

    def test_bad_connection_limit_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            AsyncioServerTransport(make_server(tmp_path), max_connections=0)


class TestProtocolParity:
    """The dispatcher contract, proven against every backend."""

    def test_full_exchange(self, tmp_path, backend):
        server = make_server(tmp_path)
        with serve_transport(server, backend=backend) as listener:
            with listener.connect() as transport:
                assert transport.request(Message("ping", {})).type == "pong"
                reg = transport.request(
                    Message("register", {"snapshot": {}})
                ).expect("registered")
                sync = transport.request(
                    Message("sync", {"client_id": reg.payload["client_id"],
                                     "have": [], "results": [], "want": 5})
                ).expect("sync_ok")
                assert len(sync.payload["testcases"]) == 2

    def test_garbage_line_gets_error_reply_and_connection_lives(
        self, tmp_path, backend
    ):
        server = make_server(tmp_path)
        with serve_transport(server, backend=backend) as listener:
            host, port = listener.address
            with socket.create_connection((host, port), timeout=5.0) as sock:
                lines = sock.makefile("rb")
                sock.sendall(b"this is not json\n")
                import json

                assert json.loads(lines.readline())["type"] == "error"
                sock.sendall(b'{"type": "ping", "payload": {}}\n')
                assert json.loads(lines.readline())["type"] == "pong"

    def test_idempotent_sync_replay_over_wire(self, tmp_path, backend):
        from test_sync_idempotent import sync_payload

        server = make_server(tmp_path)
        with serve_transport(server, backend=backend) as listener:
            with listener.connect() as transport:
                reg = transport.request(
                    Message("register", {"snapshot": {}})
                ).expect("registered")
                client_id = reg.payload["client_id"]
                first = transport.request(
                    sync_payload(client_id, ["r1", "r2"], sync_seq=1)
                ).expect("sync_ok")
                assert first.payload["accepted"] == 2
                # The ack was "lost"; the identical batch is resent.
                replay = transport.request(
                    sync_payload(client_id, ["r1", "r2"], sync_seq=1)
                ).expect("sync_ok")
                assert replay.payload["accepted"] == 0
                assert replay.payload["duplicates"] == 2
                assert replay.payload["sync_seq"] == 1
        assert sorted(server.results.run_ids()) == ["r1", "r2"]

    def test_byte_and_client_rollup_parity(self, tmp_path, backend):
        telemetry = Telemetry()
        server = make_server(tmp_path, telemetry=telemetry)
        with serve_transport(server, backend=backend) as listener:
            with listener.connect() as transport:
                reg = transport.request(
                    Message("register", {"snapshot": {}})
                ).expect("registered")
                client_id = reg.payload["client_id"]
                transport.request(
                    Message("sync", {"client_id": client_id,
                                     "have": [], "results": [], "want": 1})
                ).expect("sync_ok")
        row = server.rollups.get(client_id)
        assert row is not None
        assert row.syncs == 1
        assert row.bytes_read > 0
        assert row.bytes_written > 0
        metrics = telemetry.metrics
        assert metrics.counter("uucs_server_bytes_read_total").value() > 0
        assert metrics.counter("uucs_server_bytes_written_total").value() > 0
        latency = metrics.histogram("uucs_server_request_seconds")
        assert latency.count(type="register") == 1
        assert latency.count(type="sync") == 1


class TestConnectionLifecycle:
    def test_open_gauge_tracks_connections(self, tmp_path, backend):
        telemetry = Telemetry.in_memory()
        server = make_server(tmp_path, telemetry=telemetry)
        gauge = telemetry.metrics.gauge("uucs_server_open_connections")
        with serve_transport(server, backend=backend) as listener:
            with listener.connect() as transport:
                transport.request(Message("ping", {}))
                assert gauge.value() == 1
                assert (
                    telemetry.metrics.counter(
                        "uucs_server_connections_total"
                    ).value()
                    == 1
                )
        deadline = time.time() + 5.0
        while gauge.value() > 0 and time.time() < deadline:
            time.sleep(0.01)  # close-side bookkeeping races the test
        assert gauge.value() == 0
        names = [e.name for e in telemetry.events.sink.events]
        assert "server.connection_open" in names
        assert "server.connection_close" in names

    def test_connection_limit_applies_backpressure(self, tmp_path, backend):
        """With 2 slots and 3 clients, the third is queued — not refused —
        and completes once a slot frees."""
        telemetry = Telemetry()
        server = make_server(tmp_path, telemetry=telemetry)
        with serve_transport(
            server, backend=backend, max_connections=2
        ) as listener:
            first = listener.connect()
            second = listener.connect()
            first.request(Message("ping", {}))
            second.request(Message("ping", {}))
            third = listener.connect()
            results = []

            def overflow():
                results.append(third.request(Message("ping", {})).type)

            waiter = threading.Thread(target=overflow, daemon=True)
            waiter.start()
            # Both slots are held: the third connection must actually
            # wait for one, not get served or refused.
            waiter.join(timeout=1.0)
            assert waiter.is_alive(), "limit did not hold the connection"
            first.close()
            waiter.join(timeout=5.0)
            assert not waiter.is_alive()
            assert results == ["pong"]
            second.close()
            third.close()
        waits = telemetry.metrics.counter(
            "uucs_server_connection_limit_waits_total"
        )
        assert waits.value() >= 1


class TestShutdown:
    def test_close_disconnects_idle_clients_and_releases_port(
        self, tmp_path, backend
    ):
        server = make_server(tmp_path)
        listener = serve_transport(server, backend=backend)
        host, port = listener.address
        client = listener.connect()
        client.request(Message("ping", {}))
        listener.close()
        # The idle connection was shut down, not leaked...
        from repro.errors import TransportError

        with pytest.raises(TransportError):
            client.request(Message("ping", {}))
        client.close()
        # ...and the port is immediately rebindable.
        rebound = serve_transport(server, backend=backend, host=host, port=port)
        try:
            with rebound.connect() as again:
                assert again.request(Message("ping", {})).type == "pong"
        finally:
            rebound.close()

    def test_close_is_idempotent(self, tmp_path, backend):
        listener = serve_transport(make_server(tmp_path), backend=backend)
        listener.close()
        listener.close()

    def test_exception_path_shutdown_still_releases_port(
        self, tmp_path, backend, monkeypatch
    ):
        """Regression: a handler-teardown error mid-shutdown must not
        leave the listening socket bound (the next incarnation rebinds
        the same port immediately)."""
        server = make_server(tmp_path)
        listener = serve_transport(server, backend=backend)
        host, port = listener.address
        client = listener.connect()
        client.request(Message("ping", {}))
        boom = RuntimeError("teardown exploded")
        if backend == "threading":
            from repro.server.server import _ReusableThreadingTCPServer

            def exploding(self):
                raise boom

            monkeypatch.setattr(
                _ReusableThreadingTCPServer, "close_all_connections", exploding
            )
        else:
            async def exploding(self):
                raise boom

            monkeypatch.setattr(AsyncioServerTransport, "_drain", exploding)
        with pytest.raises(RuntimeError, match="teardown exploded"):
            listener.close()
        client.close()
        monkeypatch.undo()
        rebound = serve_transport(server, backend=backend, host=host, port=port)
        try:
            with rebound.connect() as again:
                assert again.request(Message("ping", {})).type == "pong"
        finally:
            rebound.close()
