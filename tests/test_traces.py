"""Tests for slowdown-space trace analysis."""

import pytest

from repro.analysis.traces import slowdown_at_discomfort, trace_statistics
from repro.errors import InsufficientDataError


class TestSlowdownAtDiscomfort:
    def test_per_task_summaries(self, study_runs):
        summary = slowdown_at_discomfort(study_runs, "quake")
        assert summary.task == "quake"
        assert summary.n > 10
        assert summary.mean.low <= summary.mean.mean <= summary.mean.high
        assert all(v >= 1.0 for v in summary.values)

    def test_quake_clicks_at_higher_slowdown_than_word(self, study_runs):
        """The model-diagnostic result: contention-calibrated users imply
        task-dependent tolerated slowdown (see module docstring)."""
        word = slowdown_at_discomfort(study_runs, "word")
        quake = slowdown_at_discomfort(study_runs, "quake")
        assert quake.mean.mean > word.mean.mean

    def test_jitter_metric(self, study_runs):
        jitter = slowdown_at_discomfort(study_runs, "quake", metric="jitter")
        assert 0.0 <= jitter.mean.mean <= 1.0

    def test_percentiles(self, study_runs):
        summary = slowdown_at_discomfort(study_runs)
        assert summary.percentile(0.1) <= summary.percentile(0.9)

    def test_noise_clicks_excluded(self, study_runs):
        # IE/Quake have noise-sourced feedback; it must not contaminate
        # the tolerated-slowdown distribution.
        for run in study_runs:
            if run.discomforted and run.feedback.source == "noise":
                break
        else:
            pytest.skip("no noise events in this seed")
        summary = slowdown_at_discomfort(study_runs)
        total_discomforts = sum(r.discomforted for r in study_runs)
        assert summary.n < total_discomforts

    def test_missing_data_raises(self):
        with pytest.raises(InsufficientDataError):
            slowdown_at_discomfort([])

    def test_unknown_task_raises(self, study_runs):
        with pytest.raises(InsufficientDataError):
            slowdown_at_discomfort(study_runs, "emacs")


class TestTraceStatistics:
    def test_slowdown_stats(self, study_runs):
        stats = trace_statistics(study_runs, "slowdown")
        assert stats.n_runs == len(study_runs)
        assert stats.peak >= stats.mean >= 1.0

    def test_load_stats_present_from_monitor(self, study_runs):
        stats = trace_statistics(study_runs, "load_cpu")
        assert 0.0 <= stats.mean <= 1.0
        assert stats.peak <= 1.0

    def test_unknown_metric(self, study_runs):
        with pytest.raises(InsufficientDataError):
            trace_statistics(study_runs, "nonexistent")
