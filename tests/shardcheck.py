"""Shard-equivalence contract checker for the study engines.

The sharded engine (:mod:`repro.study.sharded`) may only ever be an
optimization: for any shard count the merged run records must serialize
byte-for-byte identically to the single-process engine's.  This module
is the reusable harness that enforces it — imported by the test suite
and runnable standalone against any config::

    PYTHONPATH=src python tests/shardcheck.py --users 33 --seed 2004 --shards 1 4

Exit status 0 means every requested shard count reproduced the
single-process bytes exactly; any drift prints the first divergence and
exits 1.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):  # standalone: make `repro` importable
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.faults.shardchaos import ShardFaultPlan  # noqa: E402
from repro.stores.results import ResultStore  # noqa: E402
from repro.study.engine import SESSION_ENGINES  # noqa: E402
from repro.study import (  # noqa: E402  (after the standalone path fix-up)
    ControlledStudyConfig,
    StudyCheckpoint,
    StudyResult,
    SupervisorPolicy,
    run_controlled_study,
    run_sharded_study,
)

__all__ = [
    "assert_resume_equivalence",
    "assert_shard_equivalence",
    "golden_digest",
    "serialized_records",
    "study_digest",
]


def serialized_records(result: StudyResult) -> list[bytes]:
    """The study's records in canonical stored form: one encoded JSON
    line per run, in study order — exactly the bytes ``ResultStore``
    writes."""
    return [(run.to_json() + "\n").encode() for run in result.runs]


def study_digest(result: StudyResult) -> str:
    """SHA-256 over the concatenated canonical record lines."""
    digest = hashlib.sha256()
    for line in serialized_records(result):
        digest.update(line)
    return digest.hexdigest()


def _first_divergence(a: list[bytes], b: list[bytes]) -> str:
    if len(a) != len(b):
        return f"record counts differ: {len(a)} vs {len(b)}"
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"record {i} differs:\n  baseline: {x!r}\n  sharded:  {y!r}"
    return "no divergence"


def assert_shard_equivalence(
    config: ControlledStudyConfig,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    mp_context: str | None = None,
    verbose: bool = False,
) -> str:
    """Run ``config`` single-process and at every shard count; assert all
    serializations are byte-identical.  Returns the common digest."""
    baseline = run_controlled_study(config)
    baseline_records = serialized_records(baseline)
    baseline_digest = study_digest(baseline)
    for shards in shard_counts:
        started = time.perf_counter()
        sharded = run_sharded_study(config, shards=shards, mp_context=mp_context)
        elapsed = time.perf_counter() - started
        records = serialized_records(sharded)
        assert records == baseline_records, (
            f"--shards {shards} diverged from the single-process engine: "
            + _first_divergence(baseline_records, records)
        )
        if verbose:
            print(
                f"  shards={shards}: {len(records)} records, "
                f"{elapsed:.2f}s, sha256={baseline_digest[:16]}... OK"
            )
    return baseline_digest


def assert_resume_equivalence(
    config: ControlledStudyConfig,
    shards: int = 4,
    chaos: ShardFaultPlan | None = None,
    mp_context: str | None = None,
    verbose: bool = False,
) -> str:
    """Interrupt a checkpointed study with seeded chaos, resume it, and
    assert the resumed output is byte-identical to an uninterrupted run.

    The chaos plan must include a driver interrupt (``sigint``; the
    default plan fires after the first shard completion) and may layer
    worker kills on top.  The supervisor runs with ``quarantine=False``
    so a shard that somehow exhausts its retries fails loudly instead
    of silently shrinking the output.  Returns the study digest.
    """
    baseline = run_controlled_study(config)
    baseline_blob = b"".join(serialized_records(baseline))
    baseline_digest = study_digest(baseline)
    if chaos is None:
        chaos = ShardFaultPlan(sigint=1.0)
    assert chaos.sigint > 0.0, (
        "resume check needs a driver-interrupt probability (sigint) in "
        "its chaos plan, or nothing ever interrupts the study"
    )
    policy = SupervisorPolicy(
        max_attempts=6, base_delay=0.01, max_delay=0.05, quarantine=False
    )
    with tempfile.TemporaryDirectory(prefix="uucs-resume-check-") as td:
        store = ResultStore(td)
        interrupted = False
        started = time.perf_counter()
        try:
            run_sharded_study(
                config,
                shards=shards,
                mp_context=mp_context,
                supervisor=policy,
                checkpoint=StudyCheckpoint(store),
                chaos=chaos,
            )
        except KeyboardInterrupt:
            interrupted = True
        assert interrupted, (
            f"chaos plan {chaos} never interrupted the study; the resume "
            "path was not exercised"
        )
        partial = store.path.read_bytes() if store.path.exists() else b""
        assert baseline_blob.startswith(partial), (
            "interrupted store is not a byte prefix of the uninterrupted "
            "run: frontier-ordered checkpointing is broken"
        )
        if verbose:
            print(
                f"  interrupted with {len(partial)}/{len(baseline_blob)} "
                f"bytes committed; resuming"
            )
        resumed = run_sharded_study(
            config,
            shards=shards,
            mp_context=mp_context,
            supervisor=policy,
            checkpoint=StudyCheckpoint(store),
            resume=True,
        )
        elapsed = time.perf_counter() - started
        records = serialized_records(resumed)
        assert records == serialized_records(baseline), (
            "resumed study diverged from the uninterrupted run: "
            + _first_divergence(serialized_records(baseline), records)
        )
        stored = store.path.read_bytes()
        assert stored == baseline_blob, (
            f"resumed store bytes differ from the uninterrupted run "
            f"({len(stored)} vs {len(baseline_blob)} bytes)"
        )
        if verbose:
            print(
                f"  resume: {len(records)} records, {elapsed:.2f}s, "
                f"sha256={baseline_digest[:16]}... OK"
            )
    return baseline_digest


def golden_digest(config: ControlledStudyConfig) -> str | None:
    """The pinned golden digest for ``config``, or None when the config
    is not the canonical study.  Engines never enter the identity: every
    registered engine must reproduce the same bytes, which is exactly
    what checking the pin under ``--engine batch`` proves."""
    canonical = ControlledStudyConfig()
    if (
        config.n_users != canonical.n_users
        or config.seed != canonical.seed
        or config.tasks != canonical.tasks
    ):
        return None
    pin = Path(__file__).resolve().parent / "golden" / (
        "controlled_study_seed2004.sha256"
    )
    return pin.read_text().split()[0]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="check sharded-study byte-equivalence for a config"
    )
    parser.add_argument("--users", type=int, default=33)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--engine", choices=sorted(SESSION_ENGINES),
                        default="analytic")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--mp-context", default=None,
                        choices=["fork", "spawn", "forkserver"])
    parser.add_argument("--resume-check", action="store_true",
                        help="also interrupt a checkpointed run with seeded "
                             "chaos at each shard count and prove the "
                             "resumed output is byte-identical")
    parser.add_argument("--chaos", default="sigint=1.0", metavar="SPEC",
                        help="shard chaos spec for --resume-check "
                             "(default: interrupt after the first shard)")
    parser.add_argument("--chaos-seed", type=int,
                        default=int(os.environ.get("UUCS_CHAOS_SEED", "0")),
                        help="seed for the --resume-check fault schedule "
                             "(default: $UUCS_CHAOS_SEED, else 0)")
    args = parser.parse_args(argv)
    config = ControlledStudyConfig(
        n_users=args.users, seed=args.seed, engine=args.engine
    )
    print(
        f"shardcheck: users={args.users} seed={args.seed} "
        f"engine={args.engine} shards={args.shards}"
        + (f" resume-check chaos={args.chaos!r} "
           f"chaos-seed={args.chaos_seed}" if args.resume_check else "")
    )
    try:
        digest = assert_shard_equivalence(
            config,
            shard_counts=tuple(args.shards),
            mp_context=args.mp_context,
            verbose=True,
        )
        if args.resume_check:
            plan = ShardFaultPlan.parse(args.chaos, seed=args.chaos_seed)
            for shards in args.shards:
                if shards < 2:
                    continue  # one shard has nothing mid-study to resume
                print(f"  resume-check shards={shards}:")
                assert_resume_equivalence(
                    config,
                    shards=shards,
                    chaos=plan,
                    mp_context=args.mp_context,
                    verbose=True,
                )
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    golden = golden_digest(config)
    if golden is not None:
        if digest != golden:
            print(
                f"FAIL: engine {args.engine!r} diverged from the golden "
                f"seed-2004 pin (got {digest}, pinned {golden})",
                file=sys.stderr,
            )
            return 1
        print(f"OK: matches the golden seed-2004 pin ({golden[:16]}...)")
    print(f"OK: all shard counts byte-identical (sha256 {digest})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
