"""Tests for the figure-regeneration reports (Figures 9, 13-16)."""

import pytest

from repro import paperdata
from repro.analysis.report import (
    breakdown_table,
    cell_metrics,
    metric_tables,
    sensitivity_grid,
)
from repro.core.resources import Resource


@pytest.fixture(scope="module")
def cells_and_tables(controlled_study):
    return metric_tables(list(controlled_study.runs))


class TestBreakdown:
    def test_totals_add_up(self, study_runs):
        rows, table = breakdown_table(study_runs)
        total = rows["total"]
        per_task = [rows[t] for t in paperdata.STUDY_TASKS]
        assert total.nonblank_discomforted == sum(
            r.nonblank_discomforted for r in per_task
        )
        assert total.blank_exhausted == sum(r.blank_exhausted for r in per_task)
        grand = (
            total.nonblank_discomforted
            + total.nonblank_exhausted
            + total.blank_discomforted
            + total.blank_exhausted
        )
        assert grand == len(study_runs)

    def test_noise_floor_shape(self, study_runs):
        # Figure 9: blank discomfort only in IE and Quake.
        rows, _ = breakdown_table(study_runs)
        assert rows["word"].blank_discomfort_prob == 0.0
        assert rows["powerpoint"].blank_discomfort_prob == 0.0
        assert rows["ie"].blank_discomfort_prob > 0.1
        assert rows["quake"].blank_discomfort_prob > 0.15

    def test_render_contains_rows(self, study_runs):
        _, table = breakdown_table(study_runs)
        text = table.render()
        for task in paperdata.STUDY_TASKS:
            assert task in text


class TestCellMetrics:
    def test_metric_tables_cover_grid(self, cells_and_tables):
        cells, tables = cells_and_tables
        assert len(cells) == 15  # 4 tasks + total, x 3 resources
        assert set(tables) == {"f_d", "c_05", "c_a"}

    def test_starred_cell_word_memory(self, cells_and_tables):
        cells, tables = cells_and_tables
        cell = cells[("word", Resource.MEMORY)]
        assert cell.f_d == 0.0
        assert cell.c_a is None
        assert "*" in tables["c_a"].render()

    def test_fd_in_unit_interval(self, cells_and_tables):
        cells, _ = cells_and_tables
        for cell in cells.values():
            assert 0.0 <= cell.f_d <= 1.0

    def test_c05_below_ca(self, cells_and_tables):
        cells, _ = cells_and_tables
        for cell in cells.values():
            if cell.c_05 is not None and cell.c_a is not None:
                assert cell.c_05 <= cell.c_a.mean + 1e-9

    def test_single_cell_direct(self, study_runs):
        cell = cell_metrics(study_runs, "quake", Resource.CPU)
        assert cell.task == "quake"
        assert cell.has_reactions
        assert cell.cdf.n == 33

    def test_aggregate_cell(self, study_runs):
        cell = cell_metrics(study_runs, None, Resource.CPU)
        assert cell.task == "total"
        assert cell.cdf.n == 33 * 4

    def test_empty_cell(self):
        cell = cell_metrics([], "word", Resource.CPU)
        assert cell.f_d == 0.0 and cell.cdf is None


class TestSensitivityGrid:
    def test_letters_complete(self, cells_and_tables):
        cells, _ = cells_and_tables
        letters, table = sensitivity_grid(cells)
        for task in paperdata.STUDY_TASKS:
            for col in ("cpu", "memory", "disk", "total"):
                assert letters[(task, col)] in ("L", "M", "H")
        for col in ("cpu", "memory", "disk"):
            assert letters[("total", col)] in ("L", "M", "H")

    def test_robust_shape_claims(self, cells_and_tables):
        """The claims Figure 13 makes that our classifier must reproduce."""
        cells, _ = cells_and_tables
        letters, _ = sensitivity_grid(cells)
        # Quake is the most CPU-sensitive context.
        assert letters[("quake", "cpu")] == "H"
        # Word is never highly sensitive.
        assert "H" not in {
            letters[("word", col)] for col in ("cpu", "memory", "disk")
        }
        # Memory and disk are Low in the office contexts.
        assert letters[("word", "memory")] == "L"
        assert letters[("powerpoint", "memory")] == "L"
        assert letters[("powerpoint", "disk")] == "L"
        # IE is the disk-sensitive context.
        assert letters[("ie", "disk")] == "H"
        # Aggregate row: memory and disk Low-ish, CPU not Low... CPU >= M.
        assert letters[("total", "memory")] == "L"
        assert letters[("total", "cpu")] in ("M", "H")

    def test_classifier_on_paper_numbers(self):
        """Applied to the paper's own published metrics, the documented
        heuristic reproduces at least 10 of the 12 cell letters."""
        from repro.analysis.report import CellMetrics
        from repro.util.stats import ConfidenceInterval

        cells = {}
        for task in paperdata.STUDY_TASKS:
            for resource in (Resource.CPU, Resource.MEMORY, Resource.DISK):
                published = paperdata.cell(task, resource)
                ci = (
                    None
                    if published.c_a is None
                    else ConfidenceInterval(
                        published.c_a, published.c_a_low, published.c_a_high
                    )
                )
                cells[(task, resource)] = CellMetrics(
                    task, resource, None, published.f_d, published.c_05, ci
                )
        for resource in (Resource.CPU, Resource.MEMORY, Resource.DISK):
            published = paperdata.cell("total", resource)
            cells[("total", resource)] = CellMetrics(
                "total", resource, None, published.f_d, published.c_05, None
            )
        letters, _ = sensitivity_grid(cells)
        matches = sum(
            letters[(task, resource.value)] == expected
            for (task, resource), expected in paperdata.FIG13_SENSITIVITY.items()
        )
        assert matches >= 10
