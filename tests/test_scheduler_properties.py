"""Hypothesis property tests: controller clamping, policy invariants,
fleet reproducibility.

These are the safety rails under the harvesting scheduler: whatever
sequence of feedback a controller or policy sees, its ceiling stays in
its envelope and a discomfort is never a no-op; whatever (seed, shard
layout) a fleet runs under, the scoreboard is a pure function of the
config.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resources import Resource
from repro.errors import ThrottleError
from repro.scheduler import CDFPolicy, FleetConfig, cell_cap, simulate_clients
from repro.scheduler.fleet import _merge_aggregates
from repro.telemetry import Telemetry
from repro.throttle import FeedbackController, Throttle

CELL = ("powerpoint", Resource.CPU)

# One feedback step: a discomfort, or comfortable time (possibly an
# hours-long suspend gap — the clamping regression this suite pins).
feedback_steps = st.lists(
    st.one_of(
        st.none(),  # discomfort
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    ),
    max_size=60,
)


class TestFeedbackControllerProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        steps=feedback_steps,
        max_level=st.floats(min_value=0.5, max_value=16.0),
        floor_fraction=st.floats(min_value=0.0, max_value=1.0),
        backoff=st.floats(min_value=0.01, max_value=0.99),
        recovery=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_ceiling_always_within_envelope(
        self, steps, max_level, floor_fraction, backoff, recovery
    ):
        floor = floor_fraction * max_level
        controller = FeedbackController(
            Throttle(Resource.CPU),
            max_level=max_level,
            backoff=backoff,
            recovery_per_minute=recovery,
            floor=floor,
            telemetry=Telemetry.disabled(),
        )
        for step in steps:
            if step is None:
                controller.on_discomfort()
            else:
                controller.on_comfortable(step)
            assert floor <= controller.throttle.ceiling <= max_level

    @pytest.mark.parametrize("elapsed", [math.nan, math.inf, -1.0, -math.inf])
    def test_bad_elapsed_rejected(self, elapsed):
        controller = FeedbackController(
            Throttle(Resource.CPU),
            max_level=4.0,
            telemetry=Telemetry.disabled(),
        )
        with pytest.raises(ThrottleError):
            controller.on_comfortable(elapsed)


class TestCDFPolicyProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        steps=feedback_steps,
        budget=st.floats(min_value=0.01, max_value=0.5),
    )
    def test_ceiling_always_within_cell_envelope(self, steps, budget):
        policy = CDFPolicy(budget=budget)
        cap = cell_cap(*CELL)
        floor = policy._floor * cap
        for step in steps:
            decision = policy.decide(*CELL)
            assert floor <= decision.ceiling <= cap
            if not decision.admitted:
                continue
            if step is None:
                policy.on_discomfort(*CELL, decision.ceiling)
            else:
                policy.on_comfortable(*CELL, min(step, 3600.0))
            assert floor <= policy.decide(*CELL).ceiling <= cap

    @settings(max_examples=40, deadline=None)
    @given(steps=feedback_steps)
    def test_discomfort_strictly_decreases_above_floor(self, steps):
        policy = CDFPolicy()
        cap = cell_cap(*CELL)
        floor = policy._floor * cap
        for step in steps:
            before = policy.decide(*CELL).ceiling
            if step is None:
                policy.on_discomfort(*CELL, before)
                after = policy.decide(*CELL).ceiling
                if before > floor:
                    assert after < before
                else:
                    assert after == floor
            else:
                policy.on_comfortable(*CELL, min(step, 3600.0))


class TestFleetReproducibilityProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        clients=st.integers(min_value=1, max_value=12),
        policy=st.sampled_from(["static", "aimd", "cdf"]),
    )
    def test_same_config_same_aggregates(self, seed, clients, policy):
        config = FleetConfig(policy=policy, clients=clients, epochs=4, seed=seed)
        first = simulate_clients(config, 0, clients)
        second = simulate_clients(config, 0, clients)
        assert first == second

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        clients=st.integers(min_value=2, max_value=12),
        data=st.data(),
    )
    def test_any_split_merges_to_the_whole(self, seed, clients, data):
        """Shard layout can never leak into the scoreboard."""
        split = data.draw(
            st.integers(min_value=1, max_value=clients - 1), label="split"
        )
        config = FleetConfig(policy="cdf", clients=clients, epochs=4,
                             seed=seed, budget=0.1)
        whole = simulate_clients(config, 0, clients)
        parts = _merge_aggregates(
            [
                simulate_clients(config, 0, split),
                simulate_clients(config, split, clients),
            ]
        )
        assert whole == parts
