"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.ReproError), name


def test_validation_error_is_value_error():
    assert issubclass(errors.ValidationError, ValueError)


def test_specific_parents():
    assert issubclass(errors.RegistrationError, errors.ProtocolError)
    assert issubclass(errors.CalibrationError, errors.ExerciserError)
    assert issubclass(errors.InsufficientDataError, errors.AnalysisError)


def test_single_except_catches_library_failures():
    with pytest.raises(errors.ReproError):
        raise errors.StoreError("x")
