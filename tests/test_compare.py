"""Tests for paper-vs-measured comparison utilities."""

import pytest

from repro import paperdata
from repro.analysis.compare import (
    compare_cells,
    comparison_table,
    ordering_matches,
    relative_error,
)
from repro.analysis.report import metric_tables


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(0.1)

    def test_both_none_is_exact(self):
        assert relative_error(None, None) == 0.0

    def test_one_none_is_undefined(self):
        assert relative_error(None, 1.0) is None
        assert relative_error(1.0, None) is None

    def test_zero_published(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(0.5, 0.0) is None


class TestOrdering:
    def test_matches(self):
        published = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert ordering_matches({"a": 0.5, "b": 0.7, "c": 0.9}, published)
        assert not ordering_matches({"a": 3.0, "b": 2.0, "c": 1.0}, published)

    def test_none_excluded(self):
        published = {"a": 1.0, "b": None, "c": 3.0}
        assert ordering_matches({"a": 0.1, "b": 99.0, "c": 0.2}, published)


class TestCompareCells:
    def test_covers_grid_with_totals(self, study_runs):
        cells, _ = metric_tables(study_runs)
        comparisons = compare_cells(cells)
        assert len(comparisons) == 15
        table_text = comparison_table(comparisons).render()
        assert "quake/cpu" in table_text
        assert "total/disk" in table_text

    def test_starred_cell_compares_as_exact(self, study_runs):
        cells, _ = metric_tables(study_runs)
        comparisons = compare_cells(cells)
        word_mem = next(
            c for c in comparisons
            if c.task == "word" and c.resource.value == "memory"
        )
        # Paper '*' reproduced as '*' counts as exact agreement.
        assert word_mem.c_a_error == 0.0
        assert word_mem.published_c_a is None
