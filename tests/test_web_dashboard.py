"""Web fleet dashboard: headroom math, routes, SSE, staleness, headers."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.core.session import DISCOMFORT_LEVEL_BUCKETS
from repro.errors import ProtocolError, ValidationError
from repro.telemetry import web
from repro.telemetry.aggregate import (
    ClientRollups,
    RegistrySnapshot,
    fetch_fleet,
    fetch_history,
    push_snapshot,
)
from repro.telemetry.exporter import MetricsExporter
from repro.telemetry.metrics import MetricsRegistry, quantile_from_buckets


def make_client_registry(
    levels=(0.5, 0.8, 1.0),
    runs=10,
    borrow=0.4,
    task="word",
    resource="cpu",
):
    registry = MetricsRegistry()
    counter = registry.counter(
        "uucs_client_runs_total", "runs", labelnames=("outcome",)
    )
    if runs > len(levels):
        counter.inc(runs - len(levels), outcome="exhausted")
    if levels:
        counter.inc(len(levels), outcome="discomfort")
    if borrow is not None:
        registry.gauge("uucs_throttle_ceiling", "borrow").set(borrow)
    histogram = registry.histogram(
        "uucs_discomfort_level",
        "levels",
        labelnames=("task", "resource"),
        buckets=DISCOMFORT_LEVEL_BUCKETS,
    )
    for level in levels:
        histogram.observe(level, task=task, resource=resource)
    return registry


def snap(registry):
    return RegistrySnapshot(registry.snapshot())


class TestComfortHeadroom:
    def test_cells_compute_cq_and_headroom(self):
        snapshot = snap(make_client_registry(levels=(0.5, 0.8, 1.0), borrow=0.4))
        cells = web.comfort_cells(snapshot)
        assert len(cells) == 1
        cell = cells[0]
        assert cell["task"] == "word" and cell["resource"] == "cpu"
        assert cell["discomforts"] == 3
        # Same estimator as the exposition tooling: c_q from the
        # cumulative buckets at the headroom quantile.
        series = snapshot.series("uucs_discomfort_level")["word,cpu"]
        pairs = sorted(
            (float(bound), count) for bound, count in series["buckets"].items()
        )
        expected = quantile_from_buckets(
            [bound for bound, _ in pairs],
            [count for _, count in pairs],
            series["count"],
            web.HEADROOM_QUANTILE,
        )
        assert cell["c_q"] == pytest.approx(expected, abs=1e-4)
        assert cell["headroom"] == pytest.approx(expected - 0.4, abs=1e-4)

    def test_no_borrow_gauge_leaves_headroom_none(self):
        snapshot = snap(make_client_registry(borrow=None))
        cells = web.comfort_cells(snapshot)
        assert cells[0]["c_q"] is not None
        assert cells[0]["headroom"] is None

    def test_row_min_over_cells(self):
        registry = make_client_registry(levels=(1.0, 1.2), borrow=0.2)
        registry.histogram(
            "uucs_discomfort_level",
            "levels",
            labelnames=("task", "resource"),
            buckets=DISCOMFORT_LEVEL_BUCKETS,
        ).observe(0.1, task="quake", resource="memory")
        row = web.client_fleet_row("c1", snap(registry))
        # The binding constraint is the sensitive quake/memory cell.
        assert row["min_c_q"] < 0.2
        assert row["min_headroom"] == pytest.approx(row["min_c_q"] - 0.2, abs=1e-4)
        assert len(row["cells"]) == 2

    def test_row_without_discomfort_cdf(self):
        registry = MetricsRegistry()
        registry.counter(
            "uucs_client_runs_total", "runs", labelnames=("outcome",)
        ).inc(5, outcome="exhausted")
        row = web.client_fleet_row("c1", snap(registry))
        assert row["runs"] == 5.0
        assert row["min_headroom"] is None and row["cells"] == []

    def test_session_counter_preferred_over_client_counter(self):
        registry = MetricsRegistry()
        registry.counter(
            "uucs_session_runs_total", "runs", labelnames=("engine", "outcome")
        ).inc(7, engine="loop", outcome="discomfort")
        registry.counter(
            "uucs_client_runs_total", "runs", labelnames=("outcome",)
        ).inc(7, outcome="discomfort")
        runs, _, discomforts = web.snapshot_sample(snap(registry))
        assert runs == 7.0  # not 14: the counters describe the same runs
        assert discomforts == 7.0


class TestFleetTotals:
    def test_stale_kept_evicted_dropped(self):
        rows = [
            web.client_fleet_row("a", snap(make_client_registry(runs=10))),
            {
                **web.client_fleet_row("b", snap(make_client_registry(runs=20))),
                "stale": True,
            },
            {
                **web.client_fleet_row("c", snap(make_client_registry(runs=40))),
                "evicted": True,
            },
        ]
        totals = web.fleet_totals(rows)
        assert totals["clients"] == 3
        assert totals["active"] == 1 and totals["stale"] == 1
        assert totals["evicted"] == 1
        # runs aggregate over non-evicted rows; evicted are gone entirely.
        assert totals["runs"] == 30.0
        # headroom/borrow means come from fresh rows only (frozen gauges
        # of a stale client must not skew the live picture).
        fresh_row = rows[0]
        assert totals["min_headroom"] == fresh_row["min_headroom"]


class TestDiscomfortEvents:
    def test_first_push_counts_everything(self):
        current = snap(make_client_registry(levels=(0.5, 0.8)))
        events = web.discomfort_events("c1", None, current, at=1.0)
        assert len(events) == 1
        assert events[0]["count"] == 2
        assert events[0]["level_le"] == 0.6  # tightest bound covering 0.5

    def test_delta_between_pushes(self):
        registry = make_client_registry(levels=(0.5,))
        previous = snap(registry)
        registry.histogram(
            "uucs_discomfort_level",
            "levels",
            labelnames=("task", "resource"),
            buckets=DISCOMFORT_LEVEL_BUCKETS,
        ).observe(0.08, task="word", resource="cpu")
        events = web.discomfort_events("c1", previous, snap(registry), at=2.0)
        assert len(events) == 1
        assert events[0]["count"] == 1
        assert events[0]["level_le"] == 0.1  # only the new, low observation

    def test_no_new_discomforts_no_events(self):
        current = snap(make_client_registry(levels=(0.5,)))
        assert web.discomfort_events("c1", current, current, at=3.0) == []


class TestStudyProgressView:
    def test_absent_without_gauges(self):
        assert web.study_progress(snap(MetricsRegistry())) is None

    def test_extracts_gauges_and_shards(self):
        registry = MetricsRegistry()
        registry.gauge("uucs_study_progress_ratio", "p").set(0.5)
        registry.gauge("uucs_study_users", "u").set(32)
        registry.gauge("uucs_study_users_done", "d").set(16)
        registry.gauge("uucs_study_runs_per_second", "r").set(120.0)
        registry.gauge("uucs_study_eta_seconds", "e").set(42.0)
        shard_gauge = registry.gauge(
            "uucs_study_shard_progress_ratio", "s", labelnames=("shard",)
        )
        shard_gauge.set(1.0, shard="0")
        shard_gauge.set(0.0, shard="1")
        progress = web.study_progress(snap(registry))
        assert progress["progress_ratio"] == 0.5
        assert progress["eta_s"] == 42.0
        assert [s["shard"] for s in progress["shards"]] == ["0", "1"]
        assert progress["shards"][0]["progress_ratio"] == 1.0


class TestStreamBroker:
    def test_fanout_and_close(self):
        broker = web.StreamBroker()
        a, b = broker.subscribe(), broker.subscribe()
        assert broker.subscribers == 2
        assert broker.publish(b"frame-1") == 2
        assert a.frames.get(timeout=1) == b"frame-1"
        assert b.frames.get(timeout=1) == b"frame-1"
        broker.close()
        assert a.frames.get(timeout=1) is None  # sentinel wakes readers
        assert broker.subscribers == 0
        late = broker.subscribe()
        assert late.frames.get(timeout=1) is None  # closed: immediate end

    def test_slow_reader_drops_oldest_never_partials(self):
        broker = web.StreamBroker(max_queue=4)
        sub = broker.subscribe()
        for i in range(10):
            broker.publish(b"frame-%d" % i)
        kept = []
        while not sub.frames.empty():
            kept.append(sub.frames.get_nowait())
        assert kept == [b"frame-6", b"frame-7", b"frame-8", b"frame-9"]
        assert sub.dropped == 6

    def test_format_sse_single_data_line(self):
        frame = web.format_sse("push", {"a": "x\ny"}, event_id=7)
        assert frame.startswith(b"event: push\nid: 7\ndata: ")
        assert frame.endswith(b"\n\n")
        # Exactly one data line: JSON encoding keeps newlines escaped.
        assert frame.count(b"\ndata: ") == 1
        body = frame.split(b"data: ", 1)[1]
        assert json.loads(body) == {"a": "x\ny"}


def _http(address, request: bytes) -> bytes:
    with socket.create_connection(address, timeout=5) as sock:
        sock.sendall(request)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestExporterRoutes:
    def test_root_serves_dashboard_page(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            raw = _http(exporter.address, b"GET / HTTP/1.0\r\n\r\n")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        assert b"Content-Type: text/html; charset=utf-8" in head
        assert body.startswith(b"<!DOCTYPE html")
        assert b"EventSource" in body  # the page is the live SSE client

    def test_metrics_route_still_plain_exposition(self):
        registry = MetricsRegistry()
        registry.counter("uucs_requests_total", "requests").inc(3)
        with MetricsExporter(registry) as exporter:
            raw = _http(exporter.address, b"GET /metrics HTTP/1.0\r\n\r\n")
        assert b"text/plain" in raw and b"uucs_requests_total 3" in raw

    def test_web_false_reverts_root_and_404s_fleet(self):
        registry = MetricsRegistry()
        registry.counter("uucs_requests_total", "requests").inc()
        with MetricsExporter(registry, web=False) as exporter:
            root = _http(exporter.address, b"GET / HTTP/1.0\r\n\r\n")
            fleet = _http(exporter.address, b"GET /fleet HTTP/1.0\r\n\r\n")
            stream = _http(exporter.address, b"GET /stream HTTP/1.0\r\n\r\n")
        assert b"uucs_requests_total" in root and b"text/plain" in root
        assert b"404" in fleet and b"404" in stream

    def test_json_content_type_and_multibyte_content_length(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            host, port = exporter.address
            # A client id with multi-byte UTF-8: Content-Length must count
            # bytes, not characters.
            push_snapshot(host, port, "clïent-α", make_client_registry().snapshot())
            for path in (b"/snapshot", b"/clients", b"/fleet", b"/history"):
                raw = _http(
                    exporter.address, b"GET " + path + b" HTTP/1.0\r\n\r\n"
                )
                head, _, body = raw.partition(b"\r\n\r\n")
                assert b"Content-Type: application/json; charset=utf-8" in head
                declared = int(
                    head.split(b"Content-Length: ")[1].split(b"\r\n")[0]
                )
                assert declared == len(body)
                json.loads(body)  # every JSON endpoint stays parseable

    def test_head_answers_without_body_on_every_route(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            host, port = exporter.address
            push_snapshot(host, port, "c1", make_client_registry().snapshot())
            for path in (b"/", b"/metrics", b"/snapshot", b"/clients",
                         b"/fleet", b"/history"):
                raw = _http(
                    exporter.address, b"HEAD " + path + b" HTTP/1.0\r\n\r\n"
                )
                head, _, body = raw.partition(b"\r\n\r\n")
                assert b"200 OK" in head
                declared = int(
                    head.split(b"Content-Length: ")[1].split(b"\r\n")[0]
                )
                assert declared > 0  # the GET length, advertised
                assert body == b""  # ... but no body on HEAD

    def test_fleet_view_rows_and_feed(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            host, port = exporter.address
            push_snapshot(
                host, port, "c1",
                make_client_registry(levels=(0.5, 0.9), borrow=0.3).snapshot(),
            )
            fleet = fetch_fleet(host, port)
        assert fleet["quantile"] == web.HEADROOM_QUANTILE
        (row,) = fleet["clients"]
        assert row["client_id"] == "c1" and not row["stale"]
        assert row["borrow_level"] == 0.3
        assert row["min_headroom"] is not None
        assert fleet["totals"]["active"] == 1
        assert len(fleet["events"]) == 1 and fleet["events"][0]["count"] == 2

    def test_history_rings_capture_pushes(self):
        rollups = ClientRollups(history=8)
        with MetricsExporter(MetricsRegistry(), rollups=rollups) as exporter:
            host, port = exporter.address
            push_snapshot(host, port, "c1", make_client_registry(runs=5).snapshot())
            push_snapshot(host, port, "c1", make_client_registry(runs=9).snapshot())
            history = fetch_history(host, port)
        series = history["clients"]["c1"]
        assert history["capacity"] == 8
        assert series["runs"] == [5.0, 9.0]
        assert len(series["runs_per_s"]) == 2
        assert series["runs_per_s"][0] == 0.0  # no delta for the first point

    def test_validation_of_liveness_thresholds(self):
        with pytest.raises(ValidationError):
            MetricsExporter(MetricsRegistry(), stale_after=0.0)
        with pytest.raises(ValidationError):
            MetricsExporter(MetricsRegistry(), stale_after=30.0, evict_after=10.0)


class TestStaleAndEviction:
    def _exporter(self, clock):
        return MetricsExporter(
            MetricsRegistry(),
            stale_after=30.0,
            evict_after=120.0,
            clock=clock,
        )

    def test_stale_flag_and_eviction_drop(self):
        clock = FakeClock()
        with self._exporter(clock) as exporter:
            exporter.record_push("c1", make_client_registry().snapshot())
            fresh = exporter.fleet_view()
            assert fresh["clients"][0]["stale"] is False

            clock.now += 31.0
            stale = exporter.fleet_view()
            row = stale["clients"][0]
            assert row["stale"] is True and row["evicted"] is False
            assert row["age_s"] == pytest.approx(31.0)
            # Stale: flagged but still shown and still federated.
            assert stale["totals"]["stale"] == 1
            assert "uucs_client_runs_total" in exporter.fleet_snapshot()

            clock.now += 100.0
            evicted = exporter.fleet_view()
            assert evicted["clients"][0]["evicted"] is True
            assert evicted["totals"]["active"] == 0
            # Evicted: dropped from the federated fleet registry.
            assert "uucs_client_runs_total" not in exporter.fleet_snapshot()

    def test_new_push_revives_a_stale_client(self):
        clock = FakeClock()
        with self._exporter(clock) as exporter:
            exporter.record_push("c1", make_client_registry().snapshot())
            clock.now += 50.0
            assert exporter.fleet_view()["clients"][0]["stale"] is True
            exporter.record_push("c1", make_client_registry().snapshot())
            assert exporter.fleet_view()["clients"][0]["stale"] is False

    def test_clients_rows_annotated(self):
        clock = FakeClock()
        with self._exporter(clock) as exporter:
            exporter.record_push("c1", make_client_registry().snapshot())
            clock.now += 40.0
            (row,) = exporter.client_rows()
            assert row["stale"] is True and row["evicted"] is False
            assert row["age_s"] == pytest.approx(40.0)

    def test_evict_never_when_disabled(self):
        clock = FakeClock()
        with MetricsExporter(
            MetricsRegistry(), stale_after=30.0, evict_after=None, clock=clock
        ) as exporter:
            exporter.record_push("c1", make_client_registry().snapshot())
            clock.now += 100000.0
            row = exporter.fleet_view()["clients"][0]
            assert row["stale"] is True and row["evicted"] is False


def _parse_sse(buffer: bytes):
    """Parse complete SSE frames out of ``buffer``.

    Returns (events, remainder) where each event is the dict
    ``{"event": ..., "id": ..., "data": ...}``; keepalive comments are
    skipped.  Raises on any malformed frame — interleaved or truncated
    writes would surface here.
    """
    events = []
    while b"\n\n" in buffer:
        frame, buffer = buffer.split(b"\n\n", 1)
        if frame.startswith(b":"):
            continue  # keepalive comment
        fields = {}
        for line in frame.split(b"\n"):
            name, sep, value = line.partition(b": ")
            assert sep, f"malformed SSE line: {line!r}"
            fields[name.decode()] = value.decode()
        assert set(fields) == {"event", "id", "data"}, fields
        fields["data"] = json.loads(fields["data"])  # must be valid JSON
        fields["id"] = int(fields["id"])
        events.append(fields)
    return events, buffer


class TestConcurrentPushAndStream:
    N_THREADS = 8
    PUSHES_EACH = 10

    def test_hammered_stream_stays_frame_clean(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            host, port = exporter.address
            reader = socket.create_connection((host, port), timeout=10)
            reader.sendall(b"GET /stream HTTP/1.0\r\n\r\n")
            # Wait for the response header + hello frame so every push
            # below lands while the subscriber is attached.
            reader.settimeout(10)
            buffer = b""
            while b"\r\n\r\n" not in buffer or b"event: hello" not in buffer:
                buffer = buffer + reader.recv(65536)
            buffer = buffer.split(b"\r\n\r\n", 1)[1]  # drop HTTP headers

            def hammer(worker: int):
                for i in range(self.PUSHES_EACH):
                    push_snapshot(
                        host, port, f"worker-{worker}",
                        make_client_registry(runs=i + 1).snapshot(),
                    )

            threads = [
                threading.Thread(target=hammer, args=(w,))
                for w in range(self.N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            # The stream pump coalesces a burst into at most one frame
            # per client per window, so read until every worker's final
            # state has arrived rather than counting frames.
            expected_clients = {f"worker-{w}" for w in range(self.N_THREADS)}
            events = []
            finals: dict[str, float] = {}
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if len(finals) == self.N_THREADS and all(
                    runs == self.PUSHES_EACH for runs in finals.values()
                ):
                    break
                try:
                    chunk = reader.recv(65536)
                except TimeoutError:
                    break
                if not chunk:
                    break
                buffer += chunk
                parsed, buffer = _parse_sse(buffer)
                for event in parsed:
                    if event["event"] == "push":
                        finals[event["data"]["client_id"]] = (
                            event["data"]["runs"]
                        )
                events.extend(parsed)
            reader.close()

        pushes = [e for e in events if e["event"] == "push"]
        assert pushes, "no push frames arrived"
        # Coalescing merges frames, never invents them.
        assert len(pushes) <= self.N_THREADS * self.PUSHES_EACH
        versions = [e["id"] for e in pushes]
        assert versions == sorted(versions), "snapshot versions not monotonic"
        assert len(set(versions)) == len(versions), "duplicate versions"
        for event in pushes:
            data = event["data"]
            assert data["version"] == event["id"]
        # A client's first frame carries its full row (readers must be
        # able to seed state); repeats are light deltas with no row.
        full = [e for e in pushes if "row" in e["data"]]
        assert {e["data"]["client_id"] for e in full} == expected_clients
        for event in full:
            assert event["data"]["row"]["client_id"] == event["data"]["client_id"]
        # Every worker's final state arrived despite coalescing.
        assert finals == {
            client_id: float(self.PUSHES_EACH)
            for client_id in expected_clients
        }

    def test_reader_disconnect_is_clean(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            host, port = exporter.address
            reader = socket.create_connection((host, port), timeout=5)
            reader.sendall(b"GET /stream HTTP/1.0\r\n\r\n")
            deadline = time.monotonic() + 5
            while exporter.broker.subscribers == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            reader.close()
            # Pushes after the disconnect flush the dead subscriber out.
            deadline = time.monotonic() + 5
            while exporter.broker.subscribers:
                assert time.monotonic() < deadline, "dead reader never reaped"
                push_snapshot(
                    host, port, "c1", make_client_registry().snapshot()
                )
                time.sleep(0.02)
            # The exporter remains fully serviceable afterwards.
            assert fetch_fleet(host, port)["totals"]["clients"] == 1


class TestTopFleetSection:
    def test_renders_fleet_table_from_shared_view(self):
        fleet = {
            "clients": [
                web.client_fleet_row(
                    "aaaabbbbccccdddd",
                    snap(make_client_registry(borrow=0.3)),
                    age_s=45.0,
                    stale=True,
                ),
            ],
            "totals": {},
        }
        from repro.telemetry.dashboard import TopDashboard

        table = TopDashboard._render_fleet(fleet)
        assert "Fleet" in table
        assert "aaaabbbbcccc" in table and "stale" in table

    def test_old_exporter_degrades_once(self):
        from repro.telemetry.dashboard import TopDashboard

        calls = {"fleet": 0}

        def failing_fetch_fleet(host, port):
            calls["fleet"] += 1
            raise ProtocolError("no such route")

        dash = TopDashboard(
            "127.0.0.1",
            1,
            fetch_snapshot=lambda host, port: snap(MetricsRegistry()),
            fetch_clients=lambda host, port: [],
            fetch_fleet=failing_fetch_fleet,
        )
        assert "Fleet" not in dash.render(*dash.sample())
        dash.render_once()
        dash.render_once()
        assert calls["fleet"] == 1  # degraded after the first failure


def test_dashboard_smoke(capsys):
    """The CI smoke script must pass in-process too (same interpreter)."""
    import dashboard_smoke

    assert dashboard_smoke.main() == 0
    assert "dashboard smoke OK" in capsys.readouterr().out


class TestSchemaValidator:
    """The smoke script's mini validator must actually reject bad docs."""

    def test_rejects_missing_required_and_bad_types(self):
        import dashboard_smoke

        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {
                "a": {"type": "integer", "minimum": 0},
                "b": {"type": ["number", "null"]},
                "c": {"type": "array", "items": {"type": "string"}},
            },
        }
        assert dashboard_smoke.validate({"a": 1, "b": None, "c": ["x"]}, schema) == []
        assert dashboard_smoke.validate({}, schema)  # missing required
        assert dashboard_smoke.validate({"a": -1}, schema)  # below minimum
        assert dashboard_smoke.validate({"a": True}, schema)  # bool is not int
        assert dashboard_smoke.validate({"a": 1, "c": [2]}, schema)  # item type


class TestPumpShutdown:
    """close() must never hang on a wedged SSE pump thread (satellite:
    exporter shutdown hardening)."""

    def test_close_joins_pump_promptly_by_default(self):
        exporter = MetricsExporter(MetricsRegistry())
        pump = exporter._pump_thread
        assert pump is not None and pump.is_alive()
        started = time.monotonic()
        exporter.close()
        assert time.monotonic() - started < 2.0
        assert not pump.is_alive()

    def test_wedged_pump_abandoned_with_warning_and_counter(self, monkeypatch):
        from repro.telemetry import exporter as exporter_mod

        monkeypatch.setattr(exporter_mod, "_PUMP_JOIN_S", 0.1)
        registry = MetricsRegistry()
        exporter = MetricsExporter(registry)
        # Swap in a stand-in pump that ignores the stop signal, the way
        # a pump parked on a never-draining subscriber would.
        wedged = threading.Thread(target=time.sleep, args=(30.0,), daemon=True)
        wedged.start()
        real_pump = exporter._pump_thread
        exporter._pump_thread = wedged
        try:
            started = time.monotonic()
            with pytest.warns(RuntimeWarning, match="abandoning"):
                exporter.close()
            assert time.monotonic() - started < 5.0  # did not wait 30s
            assert registry.counter(
                "uucs_exporter_pump_abandoned_total", ""
            ).value() == 1
        finally:
            real_pump.join(timeout=5.0)
