"""Hypothesis property tests over the session loop.

Random exercise functions plus scripted threshold users: whatever the
shapes, the session must uphold the paper's §2.3 invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exercise import ExerciseFunction
from repro.core.feedback import DiscomfortEvent, RunOutcome
from repro.core.resources import CONTENTION_LIMITS, Resource
from repro.core.run import RunContext
from repro.core.session import run_simulated_session
from repro.core.testcase import Testcase
from repro.util.timeseries import SampledSeries


class ThresholdFeedback:
    """Deterministic user: reacts the first time a level >= threshold."""

    def __init__(self, threshold: float):
        self.threshold = threshold

    def begin_run(self, testcase, context):
        pass

    def poll(self, t, levels, interactivity):
        if any(v >= self.threshold for v in levels.values()):
            return DiscomfortEvent(offset=t, levels=dict(levels))
        return None


def make_testcase(values, rate):
    fn = ExerciseFunction(
        Resource.CPU, SampledSeries(rate, np.array(values)), "custom", {}
    )
    return Testcase.single("prop", fn)


level_lists = st.lists(
    st.floats(min_value=0.0, max_value=CONTENTION_LIMITS[Resource.CPU]),
    min_size=1,
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(values=level_lists, rate=st.sampled_from([0.5, 1.0, 2.0, 4.0]),
       threshold=st.floats(min_value=0.01, max_value=12.0))
def test_property_session_invariants(values, rate, threshold):
    testcase = make_testcase(values, rate)
    result = run_simulated_session(
        testcase, ThresholdFeedback(threshold), RunContext(user_id="p")
    )
    run = result.run

    # 1. The run ends within the testcase.
    assert 0.0 <= run.end_offset <= testcase.duration + 1e-9

    # 2. Outcome matches whether any sample reaches the threshold.
    should_react = any(v >= threshold for v in values)
    assert run.discomforted == should_react

    # 3. On discomfort, the recorded level is the level in effect at the
    # feedback offset and it is at or above the threshold.
    if run.discomforted:
        expected = testcase.levels_at(run.end_offset)[Resource.CPU]
        assert run.levels_at_end[Resource.CPU] == pytest.approx(expected)
        assert run.discomfort_level(Resource.CPU) >= threshold - 1e-9
        # ...and it reacted at the FIRST qualifying sample.
        first = next(i for i, v in enumerate(values) if v >= threshold)
        assert run.end_offset == pytest.approx(first / rate, abs=1e-6)

    # 4. The recorded trace covers exactly the executed prefix.
    steps_done = len(result.slowdown_trace)
    assert steps_done == len(run.load_trace["slowdown"])
    assert steps_done <= len(values)

    # 5. Last-five values are a suffix of the function up to the end.
    last = run.last_values[Resource.CPU]
    assert 1 <= len(last) <= 5
    idx = testcase.functions[Resource.CPU].series.index_at(
        min(run.end_offset, testcase.duration)
    )
    assert list(last) == [pytest.approx(v) for v in values[max(0, idx - 4): idx + 1]]


@settings(max_examples=40, deadline=None)
@given(values=level_lists, rate=st.sampled_from([1.0, 4.0]))
def test_property_exhausted_runs_full_duration(values, rate):
    testcase = make_testcase(values, rate)
    result = run_simulated_session(
        testcase, ThresholdFeedback(float("inf")), RunContext(user_id="p")
    )
    assert result.run.outcome is RunOutcome.EXHAUSTED
    assert result.run.end_offset == testcase.duration
    assert len(result.slowdown_trace) == len(values)
