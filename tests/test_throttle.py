"""Tests for the §5 throttle, controller, and borrower."""

import pytest

from repro.analysis.cdf import aggregate_cdf, per_cell_cdf
from repro.apps import get_task
from repro.core.metrics import DiscomfortCDF, DiscomfortObservation
from repro.core.resources import Resource
from repro.errors import ThrottleError
from repro.machine import SimulatedMachine
from repro.throttle import (
    BackgroundBorrower,
    CDFThrottlePolicy,
    FeedbackController,
    Throttle,
    level_for_target,
)
from repro.users import make_user, sample_population


def obs(level, censored=False):
    return DiscomfortObservation(
        level=level, censored=censored, resource=Resource.CPU
    )


class TestThrottle:
    def test_grant_clamps(self):
        throttle = Throttle(Resource.CPU, ceiling=0.5)
        assert throttle.grant(10.0) == 0.5
        assert throttle.grant(0.2) == 0.2

    def test_ceiling_moves(self):
        throttle = Throttle(Resource.CPU, 1.0)
        throttle.set_ceiling(2.0)
        assert throttle.grant(5.0) == 2.0

    def test_bounds(self):
        with pytest.raises(ThrottleError):
            Throttle(Resource.MEMORY, ceiling=2.0)
        throttle = Throttle(Resource.CPU)
        with pytest.raises(ThrottleError):
            throttle.set_ceiling(-1.0)
        with pytest.raises(ThrottleError):
            throttle.grant(-0.5)


class TestLevelForTarget:
    def test_reads_percentile(self):
        cdf = DiscomfortCDF([obs(l) for l in [1.0, 2.0, 3.0, 4.0, 5.0] * 20])
        assert level_for_target(cdf, 0.05) == 1.0
        assert level_for_target(cdf, 0.5) == 3.0

    def test_full_range_safe_returns_max(self):
        # Nobody reacts below 5% even at max: borrow everything explored.
        cdf = DiscomfortCDF([obs(5.0, censored=True)] * 99 + [obs(4.0)])
        assert level_for_target(cdf, 0.05) == 5.0

    def test_target_bounds(self):
        cdf = DiscomfortCDF([obs(1.0)])
        with pytest.raises(ThrottleError):
            level_for_target(cdf, 0.0)
        with pytest.raises(ThrottleError):
            level_for_target(cdf, 1.0)


class TestPolicy:
    def test_from_study_cdfs(self, study_runs):
        aggregate = aggregate_cdf(study_runs, Resource.CPU)
        per_task = {
            task: per_cell_cdf(study_runs, task, Resource.CPU)
            for task in ("word", "quake")
        }
        policy = CDFThrottlePolicy.from_cdfs(
            Resource.CPU, aggregate, per_task, 0.05
        )
        # Context matters: Word tolerates far more than Quake (§5).
        assert policy.level_for("word") > policy.level_for("quake")
        assert policy.level_for(None) == policy.default
        assert policy.level_for("unknown") == policy.default

    def test_apply_sets_ceiling(self, study_runs):
        aggregate = aggregate_cdf(study_runs, Resource.CPU)
        policy = CDFThrottlePolicy.from_cdfs(Resource.CPU, aggregate, {}, 0.05)
        throttle = Throttle(Resource.CPU)
        policy.apply(throttle, None)
        assert throttle.ceiling == pytest.approx(policy.default)

    def test_apply_resource_mismatch(self, study_runs):
        aggregate = aggregate_cdf(study_runs, Resource.CPU)
        policy = CDFThrottlePolicy.from_cdfs(Resource.CPU, aggregate, {})
        with pytest.raises(ThrottleError):
            policy.apply(Throttle(Resource.DISK), None)


class TestController:
    def test_backoff_halves(self):
        throttle = Throttle(Resource.CPU)
        controller = FeedbackController(throttle, max_level=4.0, backoff=0.5)
        assert throttle.ceiling == 4.0
        controller.on_discomfort()
        assert throttle.ceiling == 2.0
        controller.on_discomfort()
        assert throttle.ceiling == 1.0
        assert controller.discomfort_events == 2

    def test_recovery_additive_and_capped(self):
        throttle = Throttle(Resource.CPU)
        controller = FeedbackController(
            throttle, max_level=2.0, recovery_per_minute=0.6
        )
        controller.on_discomfort()  # 1.0
        controller.on_comfortable(60.0)
        assert throttle.ceiling == pytest.approx(1.6)
        controller.on_comfortable(600.0)
        assert throttle.ceiling == 2.0  # capped at max

    def test_floor(self):
        throttle = Throttle(Resource.CPU)
        controller = FeedbackController(
            throttle, max_level=4.0, backoff=0.1, floor=0.5
        )
        for _ in range(10):
            controller.on_discomfort()
        assert throttle.ceiling == 0.5

    def test_validation(self):
        throttle = Throttle(Resource.CPU)
        with pytest.raises(ThrottleError):
            FeedbackController(throttle, max_level=4.0, backoff=1.5)
        with pytest.raises(ThrottleError):
            FeedbackController(throttle, max_level=4.0, recovery_per_minute=-1.0)
        controller = FeedbackController(throttle, max_level=4.0)
        with pytest.raises(ThrottleError):
            controller.on_comfortable(-5.0)


class TestBorrower:
    def _borrower(self, ceiling, controller_max=None, task="word", seed=42):
        machine = SimulatedMachine()
        user = make_user(sample_population(1, seed=11)[0], seed=seed)
        throttle = Throttle(Resource.CPU, ceiling)
        controller = None
        if controller_max is not None:
            controller = FeedbackController(throttle, max_level=controller_max)
        return BackgroundBorrower(
            machine, get_task(task), user, throttle, controller
        )

    def test_conservative_vs_aggressive_tradeoff(self):
        conservative = self._borrower(0.05).run(work=500.0, horizon=7200.0)
        aggressive = self._borrower(4.0).run(work=500.0, horizon=7200.0)
        assert aggressive.throughput > conservative.throughput
        assert not conservative.completed
        assert aggressive.completed

    def test_feedback_controller_limits_discomfort(self):
        uncontrolled = self._borrower(8.0).run(work=3000.0, horizon=14400.0)
        controlled = self._borrower(8.0, controller_max=8.0).run(
            work=3000.0, horizon=14400.0
        )
        assert controlled.discomfort_events <= uncontrolled.discomfort_events

    def test_report_consistency(self):
        report = self._borrower(0.5).run(work=100.0, horizon=1000.0)
        assert 0 <= report.work_done <= 100.0
        assert report.elapsed <= 1000.0 + 1.0
        assert report.mean_level <= 0.5 + 1e-9
        assert report.throughput == pytest.approx(
            report.work_done / report.elapsed
        )

    def test_only_cpu_supported(self):
        machine = SimulatedMachine()
        user = make_user(sample_population(1, seed=1)[0], seed=1)
        with pytest.raises(ThrottleError):
            BackgroundBorrower(
                machine, get_task("word"), user, Throttle(Resource.DISK, 1.0)
            )

    def test_bad_run_args(self):
        borrower = self._borrower(1.0)
        with pytest.raises(ThrottleError):
            borrower.run(work=0.0, horizon=100.0)
