"""Smoke tests over the example scripts.

Every example must at least compile; the fast ones also run end-to-end
in a subprocess (the slow ones are exercised piecemeal by the unit and
benchmark suites already).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("stem", ["quickstart", "custom_study"])
def test_fast_example_runs(stem):
    path = next(p for p in EXAMPLES if p.stem == stem)
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-800:]
    assert proc.stdout.strip()


def test_example_inventory():
    """The README promises at least these runnable examples."""
    stems = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "controlled_study",
        "internet_study",
        "live_borrowing",
        "throttle_scheduler",
        "custom_study",
    } <= stems
