"""Tests for the ramp-vs-step (frog-in-pot) analysis."""

import pytest

from repro.analysis.dynamics import ramp_vs_step
from repro.core.feedback import DiscomfortEvent, RunOutcome
from repro.core.resources import Resource
from repro.core.run import RunContext, TestcaseRun
from repro.errors import InsufficientDataError


def run_for(user, shape, level, discomfort=True, task="powerpoint",
            resource=Resource.CPU):
    feedback = None
    if discomfort:
        feedback = DiscomfortEvent(offset=60.0, levels={resource: level})
    return TestcaseRun(
        run_id=f"{user}-{shape}",
        testcase_id=f"tc-{shape}",
        context=RunContext(user_id=user, task=task),
        outcome=RunOutcome.DISCOMFORT if discomfort else RunOutcome.EXHAUSTED,
        end_offset=60.0 if discomfort else 120.0,
        testcase_duration=120.0,
        shapes={resource: shape},
        levels_at_end={resource: level},
        last_values={resource: (level,)},
        feedback=feedback,
    )


class TestPairing:
    def test_detects_frog_in_pot(self):
        runs = []
        for i in range(20):
            runs.append(run_for(f"u{i}", "ramp", 1.2 + 0.01 * i))
            runs.append(run_for(f"u{i}", "step", 0.98))
        result = ramp_vs_step(runs, "powerpoint", Resource.CPU)
        assert result.n_pairs == 20
        assert result.fraction_higher_on_ramp == 1.0
        assert result.mean_difference > 0.2
        assert result.supports_frog_in_pot

    def test_no_effect_when_equal(self):
        runs = []
        for i in range(20):
            level = 1.0 + 0.01 * (i % 5)
            runs.append(run_for(f"u{i}", "ramp", level))
            runs.append(run_for(f"u{i}", "step", level))
        result = ramp_vs_step(runs, "powerpoint", Resource.CPU)
        assert result.mean_difference == pytest.approx(0.0, abs=1e-9)
        assert not result.supports_frog_in_pot

    @pytest.mark.filterwarnings(
        "ignore:Precision loss occurred:RuntimeWarning"
    )
    def test_censored_runs_use_max_level(self):
        runs = []
        for i in range(10):
            # Ramp exhausted at max 2.0, step reacted at 0.98.
            runs.append(run_for(f"u{i}", "ramp", 2.0, discomfort=False))
            runs.append(run_for(f"u{i}", "step", 0.98))
        result = ramp_vs_step(runs, "powerpoint", Resource.CPU)
        assert result.fraction_higher_on_ramp == 1.0

    @pytest.mark.filterwarnings(
        "ignore:Precision loss occurred:RuntimeWarning"
    )
    def test_unpaired_users_excluded(self):
        runs = [
            run_for("a", "ramp", 1.0),
            run_for("a", "step", 0.9),
            run_for("b", "ramp", 1.0),  # no step run
            run_for("c", "ramp", 1.1),
            run_for("c", "step", 1.0),
        ]
        result = ramp_vs_step(runs, "powerpoint", Resource.CPU)
        assert result.n_pairs == 2

    def test_too_few_pairs_raises(self):
        runs = [run_for("a", "ramp", 1.0), run_for("a", "step", 0.9)]
        with pytest.raises(InsufficientDataError):
            ramp_vs_step(runs, "powerpoint", Resource.CPU)

    def test_wrong_task_filtered(self):
        runs = [
            run_for(f"u{i}", shape, 1.0, task="word")
            for i in range(5)
            for shape in ("ramp", "step")
        ]
        with pytest.raises(InsufficientDataError):
            ramp_vs_step(runs, "powerpoint", Resource.CPU)

    @pytest.mark.filterwarnings(
        "ignore:Precision loss occurred:RuntimeWarning"
    )
    def test_describe(self):
        runs = []
        for i in range(5):
            runs.append(run_for(f"u{i}", "ramp", 1.2))
            runs.append(run_for(f"u{i}", "step", 0.98))
        text = ramp_vs_step(runs, "powerpoint", Resource.CPU).describe()
        assert "powerpoint/cpu" in text and "pairs" in text


class TestOnStudyData:
    def test_powerpoint_cpu_shows_effect(self, study_runs):
        """The paper's §3.3.5 result reproduces on the simulated study."""
        result = ramp_vs_step(study_runs, "powerpoint", Resource.CPU)
        assert result.n_pairs == 33
        assert result.fraction_higher_on_ramp > 0.7
        assert result.mean_difference > 0.1
        assert result.test.p_value < 0.01
        assert result.supports_frog_in_pot
