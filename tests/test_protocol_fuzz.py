"""Protocol fuzzing: the server must answer garbage with errors, never
crash or corrupt state (hypothesis-generated requests)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exercise import constant
from repro.core.resources import Resource
from repro.core.testcase import Testcase
from repro.errors import ProtocolError
from repro.server import UUCSServer
from repro.server.protocol import Message, decode_message, encode_message

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    server = UUCSServer(tmp_path_factory.mktemp("fuzz-server"), seed=1)
    server.add_testcases(
        [Testcase.single("t", constant(Resource.CPU, 1.0, 10.0))]
    )
    return server


@settings(max_examples=80, deadline=None)
@given(
    msg_type=st.sampled_from(["register", "sync", "ping"]),
    payload=st.dictionaries(
        st.text(min_size=1, max_size=12).filter(lambda s: s != "type"),
        json_values,
        max_size=5,
    ),
)
def test_property_server_always_answers(server, msg_type, payload):
    request = Message(msg_type, payload)
    response = server.handle(request)
    assert isinstance(response, Message)
    assert not response.is_request
    # The response always survives the codec.
    assert decode_message(encode_message(response)).type == response.type
    # The testcase store is never corrupted by a request.
    assert server.testcases.ids() == ["t"]


@settings(max_examples=80, deadline=None)
@given(raw=st.binary(max_size=200))
def test_property_decoder_never_crashes_unexpectedly(raw):
    try:
        message = decode_message(raw)
    except ProtocolError:
        return
    # Anything that decodes must be a well-formed message.
    assert isinstance(message, Message)


@settings(max_examples=60, deadline=None)
@given(payload=json_values)
def test_property_decoder_rejects_non_request_json(payload):
    line = json.dumps(payload)
    try:
        message = decode_message(line)
    except ProtocolError:
        return
    assert isinstance(message, Message)
