"""Tests for the text figure renderers."""

import pytest

from repro.analysis.plots import render_cdf, render_mini_cdf, sparkline
from repro.core.metrics import DiscomfortCDF, DiscomfortObservation
from repro.core.resources import Resource
from repro.errors import ValidationError


def cdf(levels=(0.5, 1.0, 1.5), censored=1):
    obs = [
        DiscomfortObservation(level=l, censored=False, resource=Resource.CPU)
        for l in levels
    ] + [
        DiscomfortObservation(level=2.0, censored=True, resource=Resource.CPU)
        for _ in range(censored)
    ]
    return DiscomfortCDF(obs)


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"

    def test_downsampling(self):
        line = sparkline(list(range(1000)), width=20)
        assert len(line) == 20

    def test_empty(self):
        assert sparkline([]) == ""

    def test_bad_width(self):
        with pytest.raises(ValidationError):
            sparkline([1.0], width=0)


class TestRenderCdf:
    def test_contains_counts_and_axes(self):
        text = render_cdf(cdf(), "Figure X", x_max=2.0)
        assert "Figure X" in text
        assert "DfCount=3 ExCount=1" in text
        assert "f_d=0.75" in text
        assert "contention" in text
        assert "*" in text

    def test_dimensions(self):
        text = render_cdf(cdf(), "T", x_max=2.0, width=40, height=8)
        lines = text.splitlines()
        assert len(lines) == 2 + 8 + 2  # header(2) + grid + axis(2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            render_cdf(cdf(), "T", x_max=0.0)
        with pytest.raises(ValidationError):
            render_cdf(cdf(), "T", x_max=1.0, width=4)


class TestRenderMiniCdf:
    def test_rows(self):
        rows = render_mini_cdf(cdf(), x_max=2.0, width=10, height=4)
        assert len(rows) == 4
        assert all(len(r) == 12 for r in rows)  # content + side bars
        assert any("*" in r for r in rows)

    def test_validation(self):
        with pytest.raises(ValidationError):
            render_mini_cdf(cdf(), x_max=-1.0)
