"""Tests for the Kaplan-Meier discomfort-threshold estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.survival import (
    kaplan_meier,
    km_discomfort_probability,
    km_percentile,
)
from repro.core.metrics import DiscomfortCDF, DiscomfortObservation
from repro.core.resources import Resource
from repro.errors import InsufficientDataError, ValidationError


def obs(level, censored=False):
    return DiscomfortObservation(
        level=level, censored=censored, resource=Resource.CPU
    )


class TestUncensored:
    def test_matches_empirical_cdf_without_censoring(self):
        levels = [0.5, 1.0, 1.5, 2.0, 3.0]
        observations = [obs(l) for l in levels]
        km = kaplan_meier(observations)
        naive = DiscomfortCDF(observations)
        for level in levels:
            assert km.evaluate(level) == pytest.approx(naive.evaluate(level))
        assert km.max_coverage == pytest.approx(1.0)

    def test_percentile_matches_naive(self):
        observations = [obs(l) for l in np.linspace(0.1, 10.0, 100)]
        km = kaplan_meier(observations)
        naive = DiscomfortCDF(observations)
        assert km.percentile(0.05) == pytest.approx(naive.c_percentile(0.05))


class TestCensoring:
    def test_early_censoring_raises_estimate_above_naive(self):
        # Half the runs censored at level 1 (they never explored beyond);
        # reactions occur at 2.  The naive CDF says P(<=2) = 0.5; KM knows
        # the censored runs tell us nothing about level 2.
        observations = [obs(1.0, censored=True)] * 5 + [obs(2.0)] * 5
        km = kaplan_meier(observations)
        naive = DiscomfortCDF(observations)
        assert naive.evaluate(2.0) == 0.5
        assert km.evaluate(2.0) == pytest.approx(1.0)

    def test_top_censoring_equivalent_to_naive_below_max(self):
        # Controlled-study shape: all censoring at the common ramp max.
        observations = [obs(l) for l in (0.5, 1.0, 1.5)] + [
            obs(2.0, censored=True)
        ] * 3
        km = kaplan_meier(observations)
        naive = DiscomfortCDF(observations)
        for level in (0.5, 1.0, 1.5):
            assert km.evaluate(level) == pytest.approx(naive.evaluate(level))

    def test_coverage_capped_when_all_censored_above(self):
        observations = [obs(1.0)] + [obs(5.0, censored=True)] * 9
        km = kaplan_meier(observations)
        assert km.max_coverage == pytest.approx(0.1)
        with pytest.raises(InsufficientDataError):
            km.percentile(0.5)

    def test_helpers(self):
        observations = [obs(1.0), obs(2.0), obs(3.0, censored=True)]
        assert km_discomfort_probability(observations, 1.5) > 0
        assert km_percentile(observations, 0.3) in (1.0, 2.0)


class TestValidation:
    def test_empty(self):
        with pytest.raises(InsufficientDataError):
            kaplan_meier([])

    def test_bad_percentile(self):
        km = kaplan_meier([obs(1.0)])
        with pytest.raises(ValidationError):
            km.percentile(0.0)

    def test_evaluate_below_first_event(self):
        km = kaplan_meier([obs(1.0)])
        assert km.evaluate(0.5) == 0.0


class TestOnStudyData:
    def test_km_close_to_naive_on_controlled_study(self, study_runs):
        """With common ramp maxima per cell, KM and the paper's naive CDF
        agree below the max — validating the paper's simpler estimator for
        its own study design."""
        from repro.analysis.cdf import observations_from_runs

        observations = observations_from_runs(
            study_runs, resource=Resource.CPU, task="quake"
        )
        km = kaplan_meier(observations)
        naive = DiscomfortCDF(observations)
        for level in (0.2, 0.5, 0.8, 1.0):
            assert km.evaluate(level) == pytest.approx(
                naive.evaluate(level), abs=0.02
            )


@settings(max_examples=50)
@given(
    events=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                    max_size=80),
    censors=st.lists(st.floats(min_value=0.01, max_value=10.0), max_size=80),
)
def test_property_km_dominates_naive(events, censors):
    """KM's estimate is always >= the naive CDF (censoring can only have
    hidden reactions, never un-reacted ones), monotone, and within [0,1]."""
    observations = [obs(l) for l in events] + [
        obs(l, censored=True) for l in censors
    ]
    km = kaplan_meier(observations)
    naive = DiscomfortCDF(observations)
    assert np.all(np.diff(km.cdf) >= -1e-12)
    assert np.all((km.cdf >= -1e-12) & (km.cdf <= 1.0 + 1e-12))
    for level in sorted(set(events))[:20]:
        assert km.evaluate(level) >= naive.evaluate(level) - 1e-9
