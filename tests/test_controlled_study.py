"""Tests for the controlled study driver (protocol, determinism)."""

import pytest

from repro import paperdata
from repro.errors import StudyError
from repro.study import ControlledStudyConfig, run_controlled_study


class TestProtocol:
    def test_run_counts(self, small_study):
        # 6 users x 4 tasks x 8 testcases.
        assert len(small_study) == 6 * 4 * 8

    def test_tasks_in_order_per_user(self, small_study):
        for profile in small_study.profiles:
            runs = small_study.runs_for(user_id=profile.user_id)
            tasks = [r.context.task for r in runs]
            boundaries = [tasks.index(t) for t in paperdata.STUDY_TASKS]
            assert boundaries == sorted(boundaries)
            # Within a user, started_at strictly increases.
            starts = [r.context.started_at for r in runs]
            assert starts == sorted(starts)
            assert starts[0] >= 20 * 60  # preamble first

    def test_testcase_order_randomized_between_users(self, small_study):
        orders = set()
        for profile in small_study.profiles:
            runs = small_study.runs_for(user_id=profile.user_id, task="word")
            orders.add(tuple(r.testcase_id for r in runs))
        assert len(orders) > 1

    def test_each_user_runs_every_testcase(self, small_study):
        for profile in small_study.profiles:
            for task in paperdata.STUDY_TASKS:
                runs = small_study.runs_for(user_id=profile.user_id, task=task)
                assert len(runs) == 8
                assert len({r.testcase_id for r in runs}) == 8

    def test_ratings_recorded_in_context(self, small_study):
        run = small_study.runs[0]
        profile = small_study.profile_for(run.context.user_id)
        for category, level in profile.questionnaire().items():
            assert run.context.extra[f"rating_{category}"] == level

    def test_machine_recorded(self, small_study):
        assert all(r.context.machine_id == "dell-gx270" for r in small_study)


class TestDeterminism:
    def test_same_seed_same_study(self):
        a = run_controlled_study(ControlledStudyConfig(n_users=3, seed=17))
        b = run_controlled_study(ControlledStudyConfig(n_users=3, seed=17))
        assert [r.run_id for r in a.runs] == [r.run_id for r in b.runs]
        assert [r.outcome for r in a.runs] == [r.outcome for r in b.runs]
        assert [r.end_offset for r in a.runs] == [r.end_offset for r in b.runs]

    def test_different_seed_differs(self):
        a = run_controlled_study(ControlledStudyConfig(n_users=3, seed=17))
        b = run_controlled_study(ControlledStudyConfig(n_users=3, seed=18))
        assert [r.outcome for r in a.runs] != [r.outcome for r in b.runs]


class TestResultAccess:
    def test_filters(self, small_study):
        word = small_study.runs_for(task="word")
        assert all(r.context.task == "word" for r in word)
        blanks = small_study.runs_for(blank=True)
        assert len(blanks) == 6 * 4 * 2
        non_blanks = small_study.runs_for(blank=False)
        assert len(blanks) + len(non_blanks) == len(small_study)

    def test_profile_lookup(self, small_study):
        with pytest.raises(StudyError):
            small_study.profile_for("ghost")

    def test_config_validation(self):
        with pytest.raises(StudyError):
            ControlledStudyConfig(n_users=0)
        with pytest.raises(StudyError):
            ControlledStudyConfig(tasks=())
