"""Reproduction acceptance tests: DESIGN.md §5's shape criteria.

These assert the *shape* of the paper's findings on the canonical
controlled-study simulation — orderings, rough magnitudes, qualitative
effects — not exact counts from the original 33-human sample.
"""

import pytest

from repro import paperdata
from repro.analysis import (
    aggregate_cdf,
    breakdown_table,
    metric_tables,
    ramp_vs_step,
)
from repro.core.resources import Resource


@pytest.fixture(scope="module")
def cells(controlled_study):
    cells, _ = metric_tables(list(controlled_study.runs))
    return cells


class TestFigure9Shape:
    def test_blank_noise_floor(self, study_runs):
        rows, _ = breakdown_table(study_runs)
        # "users exhibit this behavior only in IE and Quake"
        assert rows["word"].blank_discomforted == 0
        assert rows["powerpoint"].blank_discomforted == 0
        assert rows["ie"].blank_discomfort_prob == pytest.approx(0.22, abs=0.12)
        assert rows["quake"].blank_discomfort_prob == pytest.approx(0.30, abs=0.12)

    def test_most_nonblank_cpu_runs_cause_discomfort(self, study_runs):
        cdf = aggregate_cdf(study_runs, Resource.CPU)
        assert cdf.f_d() > 0.6


class TestFigure10to12Shape:
    def test_fd_ordering_cpu_gt_disk_gt_memory(self, cells):
        """Figure 14 totals: CPU 0.86 > Disk 0.33 > Memory 0.21."""
        fd_cpu = cells[("total", Resource.CPU)].f_d
        fd_disk = cells[("total", Resource.DISK)].f_d
        fd_mem = cells[("total", Resource.MEMORY)].f_d
        assert fd_cpu > fd_disk > fd_mem
        assert fd_cpu == pytest.approx(0.86, abs=0.15)
        assert fd_mem == pytest.approx(0.21, abs=0.12)

    def test_memory_and_disk_tolerated_aggressively(self, cells):
        """'Borrow disk and memory aggressively, CPU less so' (§5)."""
        # ~80% unfazed by near-total memory borrowing.
        assert cells[("total", Resource.MEMORY)].f_d < 0.35
        # ~70% comfortable with heavy disk contention.
        assert cells[("total", Resource.DISK)].f_d < 0.5

    def test_headline_operating_points(self, cells):
        """Figure 15 totals: c_0.05 ~ 0.35 CPU / 0.33 mem / 1.11 disk."""
        c05_cpu = cells[("total", Resource.CPU)].c_05
        c05_disk = cells[("total", Resource.DISK)].c_05
        assert 0.1 <= c05_cpu <= 0.7
        # A full disk-writing task (level 1) stays under the 5% point.
        assert c05_disk >= 0.6

    def test_some_users_tolerate_extreme_cpu(self, study_runs):
        """Figure 10: >10% of users unfazed even at the CPU ramp maxima."""
        cdf = aggregate_cdf(study_runs, Resource.CPU)
        assert cdf.ex_count / cdf.n > 0.08


class TestFigure16Shape:
    def test_cpu_tolerance_ordering_across_tasks(self, cells):
        """Quake < IE ~ PPT < Word in mean tolerated CPU contention."""
        ca = {
            task: cells[(task, Resource.CPU)].c_a.mean
            for task in paperdata.STUDY_TASKS
        }
        assert ca["quake"] < ca["ie"]
        assert ca["quake"] < ca["powerpoint"]
        assert max(ca["ie"], ca["powerpoint"]) < ca["word"]

    def test_word_tolerates_very_high_cpu(self, cells):
        """'For an undemanding application like Word, the CPU contention
        can be very high (> 4)' — c_a ~ 4.35."""
        assert cells[("word", Resource.CPU)].c_a.mean > 3.0

    def test_quake_cpu_low_threshold(self, cells):
        """Quake/CPU c_a ~ 0.64: even modest borrowing is felt."""
        assert cells[("quake", Resource.CPU)].c_a.mean == pytest.approx(
            0.64, abs=0.25
        )

    def test_word_memory_starved_cell(self, cells):
        """Word/Memory reproduces the paper's '*' (no discomfort at all)."""
        assert cells[("word", Resource.MEMORY)].f_d == 0.0
        assert cells[("word", Resource.MEMORY)].c_a is None

    def test_disk_tolerance_office_vs_interactive(self, cells):
        """Office tasks tolerate far more disk contention than Quake."""
        assert (
            cells[("powerpoint", Resource.DISK)].c_a.mean
            > cells[("quake", Resource.DISK)].c_a.mean
        )

    def test_measured_ca_within_factor_two_of_paper(self, cells):
        """Magnitude check: every reactive cell's c_a is within 2x of the
        published value (substrate differs; shape must hold).  Cells with
        fewer than 5 reactions are skipped — at that sample size even the
        paper's own CIs span a factor of 5 (e.g. PPT/Memory: 0.21-1.06)."""
        for task in [*paperdata.STUDY_TASKS, "total"]:
            for resource in (Resource.CPU, Resource.MEMORY, Resource.DISK):
                published = paperdata.cell(task, resource)
                measured = cells[(task, resource)]
                if published.c_a is None or measured.c_a is None:
                    continue
                if measured.cdf.df_count < 5:
                    continue
                ratio = measured.c_a.mean / published.c_a
                assert 0.5 <= ratio <= 2.0, (
                    f"{task}/{resource.value}: measured "
                    f"{measured.c_a.mean:.2f} vs published {published.c_a:.2f}"
                )


class TestMemoryContextShape:
    def test_office_immune_interactive_sensitive(self, cells):
        """§3.3.3: memory borrowing barely touches Word/PPT; IE and Quake
        react far more."""
        office = max(
            cells[("word", Resource.MEMORY)].f_d,
            cells[("powerpoint", Resource.MEMORY)].f_d,
        )
        interactive = min(
            cells[("ie", Resource.MEMORY)].f_d,
            cells[("quake", Resource.MEMORY)].f_d,
        )
        assert interactive > office + 0.15


class TestFrogInPot:
    def test_powerpoint_cpu_effect(self, study_runs):
        """§3.3.5: most users tolerate a higher level on the ramp than the
        step, with a positive mean difference near 0.22 and small p."""
        result = ramp_vs_step(study_runs, "powerpoint", Resource.CPU)
        assert result.fraction_higher_on_ramp > 0.7
        assert result.mean_difference == pytest.approx(0.22, abs=0.2)
        assert result.test.p_value < 0.01
        assert result.supports_frog_in_pot
