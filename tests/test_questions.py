"""Tests for the six-questions report."""

import pytest

from repro.analysis.questions import answer_questions
from repro.core.resources import Resource


@pytest.fixture(scope="module")
def report(controlled_study):
    return answer_questions(list(controlled_study.runs))


class TestAnswers:
    def test_q1_safe_levels(self, report):
        assert report.safe_levels[Resource.CPU] is not None
        assert report.safe_levels[Resource.DISK] > report.safe_levels[Resource.CPU]

    def test_q2_resource_ordering(self, report):
        fd = report.resource_fd
        assert fd[Resource.CPU] > fd[Resource.DISK] > fd[Resource.MEMORY]

    def test_q3_context_spread(self, report):
        assert report.context_ca["word"] > report.context_ca["quake"]

    def test_q5_frog(self, report):
        assert report.frog_in_pot is not None
        assert report.frog_in_pot.supports_frog_in_pot

    def test_q6_absent_without_internet_data(self, report):
        assert report.host_speed is None

    def test_q6_with_internet_data(self, controlled_study):
        from repro.core.resources import Resource as R
        from repro.study import (
            InternetStudyConfig,
            host_speed_effect,
            run_internet_study,
        )

        result = run_internet_study(
            InternetStudyConfig(
                n_clients=10, duration=2 * 3600.0,
                mean_execution_interval=500.0, library_size=30, seed=3,
            )
        )
        bins = host_speed_effect(result, R.CPU, n_groups=2)
        report = answer_questions(
            list(controlled_study.runs), host_speed_bins=bins
        )
        assert report.host_speed is not None
        assert "host" in report.render().lower()


class TestRendering:
    def test_render_covers_all_questions(self, report):
        text = report.render()
        for q in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6"):
            assert q in text
        assert "frog" in text.lower()
        assert "memory" in text

    def test_render_on_empty_study(self):
        report = answer_questions([])
        text = report.render()
        assert "beyond explored range" in text or "Q1" in text


class TestFullReport:
    def test_full_report_covers_every_section(self, controlled_study):
        from repro.analysis import full_report

        text = full_report(list(controlled_study.runs))
        for marker in (
            "Figure 9", "Figure 10", "Figure 11", "Figure 12",
            "Figure 13", "Figure 14", "Figure 15", "Figure 16",
            "Figure 17", "Time dynamics", "Q1", "Q6",
        ):
            assert marker in text, marker

    def test_full_report_without_plots(self, controlled_study):
        from repro.analysis import full_report

        text = full_report(
            list(controlled_study.runs), include_cdf_plots=False
        )
        assert "Figure 10" not in text
        assert "Figure 14" in text
