"""TCP failure paths: malformed lines, cut connections, half-written
responses, server restarts, and the seeded chaos-proxy soak.

Server-side transports come from the backend registry, so setting
``UUCS_SERVER_BACKEND=asyncio`` runs this whole file against the asyncio
backend (the CI matrix does exactly that)."""

import contextlib
import json
import os
import socket
import threading

import pytest

from repro.client import ClientConfig, UUCSClient
from repro.core.exercise import constant
from repro.core.resources import Resource
from repro.core.testcase import Testcase
from repro.errors import TransportError
from repro.faults import (
    ChaosTCPProxy,
    FaultPlan,
    ReconnectingTCPTransport,
    RetryingTransport,
    RetryPolicy,
)
from repro.net import serve_transport
from repro.server import Message, UUCSServer
from repro.users import make_user, sample_population


def tc(tcid):
    return Testcase.single(tcid, constant(Resource.CPU, 1.0, 10.0))


@pytest.fixture()
def served(tmp_path):
    server = UUCSServer(tmp_path / "server", seed=1)
    server.add_testcases([tc("a"), tc("b")])
    with serve_transport(server) as transport:
        yield server, transport


class TestMalformedInput:
    def test_garbage_line_gets_error_reply_and_connection_lives(self, served):
        _, transport = served
        host, port = transport.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            lines = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            reply = json.loads(lines.readline())
            assert reply["type"] == "error"
            # Same connection, next line: still being served.
            sock.sendall(b'{"type": "ping", "payload": {}}\n')
            assert json.loads(lines.readline())["type"] == "pong"

    def test_bad_result_record_gets_error_reply(self, served):
        server, transport = served
        client = transport.connect()
        try:
            client_id = client.request(
                Message("register", {"snapshot": {}})
            ).payload["client_id"]
            response = client.request(
                Message(
                    "sync",
                    {
                        "client_id": client_id,
                        "have": [],
                        "results": [{"run_id": "r1"}],  # missing everything
                        "want": 0,
                    },
                )
            )
            assert response.type == "error"
            # The poison record committed nothing and the connection
            # still serves well-formed requests.
            assert len(server.results) == 0
            assert client.request(Message("ping", {})).type == "pong"
        finally:
            client.close()

    def test_unknown_message_type_is_an_error_not_a_hangup(self, served):
        _, transport = served
        host, port = transport.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            lines = sock.makefile("rb")
            sock.sendall(b'{"type": "warp", "payload": {}}\n')
            assert json.loads(lines.readline())["type"] == "error"
            sock.sendall(b'{"type": "ping", "payload": {}}\n')
            assert json.loads(lines.readline())["type"] == "pong"


class TestConnectionFailures:
    def test_connect_refused_is_transport_error(self):
        with socket.create_server(("127.0.0.1", 0)) as probe:
            port = probe.getsockname()[1]
        # The listener above is closed: nothing is bound to `port` now.
        from repro.server import TCPClientTransport

        with pytest.raises(TransportError):
            TCPClientTransport("127.0.0.1", port, timeout=0.5)

    def test_mid_request_disconnect_is_transport_error(self, served):
        _, transport = served
        client = transport.connect()
        transport.close()  # server goes away under the client's feet
        with pytest.raises(TransportError):
            client.request(Message("ping", {}))
        client.close()

    def test_half_written_response_is_transport_error(self):
        """An ad-hoc server that writes half a line and hangs up."""

        def serve(listener):
            conn, _ = listener.accept()
            conn.makefile("rb").readline()
            conn.sendall(b'{"type": "pong", "pay')  # no newline, then gone
            conn.close()

        listener = socket.create_server(("127.0.0.1", 0))
        threading.Thread(target=serve, args=(listener,), daemon=True).start()
        from repro.server import TCPClientTransport

        client = TCPClientTransport(*listener.getsockname()[:2], timeout=5.0)
        with pytest.raises(TransportError, match="truncated|closed"):
            client.request(Message("ping", {}))
        client.close()
        listener.close()


class TestServerRestart:
    def test_restart_between_register_and_sync(self, tmp_path):
        """The client registers, the server dies and is reborn on the SAME
        port from the same stores; a reconnecting+retrying client then
        syncs as if nothing happened."""
        root = tmp_path / "server"
        server = UUCSServer(root, seed=1)
        server.add_testcases([tc("a"), tc("b")])
        first = serve_transport(server)
        host, port = first.address

        transport = RetryingTransport(
            ReconnectingTCPTransport(host, port, timeout=5.0),
            RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.05),
            seed=7,
        )
        client = UUCSClient(
            ClientConfig(root=tmp_path / "client", user_id="u"),
            transport,
            seed=2,
        )
        client.register({})
        client.hot_sync()
        feedback = make_user(sample_population(1, seed=3)[0], seed=4)
        run = client.run_script(["a"], feedback, task="word")[0]

        first.close()
        reborn = UUCSServer(root, seed=5)  # registry + results from disk
        reborn.add_testcases([tc("a"), tc("b")])
        second = serve_transport(reborn, host=host, port=port)
        try:
            _, uploaded = client.hot_sync()
            assert uploaded == 1
            assert run.run_id in reborn.results
            assert transport.retries >= 1
        finally:
            second.close()
            transport.close()


class TestChaosProxySoak:
    def test_soak_exactly_once_under_chaos(self, tmp_path):
        """≥100 syncs through a seeded chaos proxy (drop, drop-ack,
        duplicate all at 0.2, disconnects at 0.1): the server store must
        end up holding exactly the set of runs the client recorded —
        zero lost, zero duplicated."""
        seed = int(os.environ.get("UUCS_CHAOS_SEED", "42"))
        # CI sets UUCS_TELEMETRY so a failing soak leaves an event log
        # (retries, injected faults, replays) behind as an artifact.
        event_log = os.environ.get("UUCS_TELEMETRY", "")
        with contextlib.ExitStack() as stack:
            if event_log:
                from repro.telemetry import Telemetry, use_telemetry

                stack.enter_context(use_telemetry(Telemetry.to_path(event_log)))
            self._soak(tmp_path, seed)

    def _soak(self, tmp_path, seed):
        server = UUCSServer(tmp_path / "server", seed=1)
        server.add_testcases([tc("a"), tc("b")])
        tcp = serve_transport(server)
        proxy = ChaosTCPProxy(
            tcp.address,
            FaultPlan(
                drop_request=0.2,
                drop_response=0.2,
                duplicate=0.2,
                disconnect=0.1,
                corrupt=0.1,
            ),
            seed=seed,
        )
        host, port = proxy.address
        transport = RetryingTransport(
            ReconnectingTCPTransport(host, port, timeout=5.0),
            RetryPolicy(
                max_attempts=12,
                base_delay=0.001,
                max_delay=0.01,
                retry_budget=100_000,
            ),
            seed=seed + 1,
        )
        client = UUCSClient(
            ClientConfig(root=tmp_path / "client", user_id="u"),
            transport,
            seed=seed + 2,
        )
        expected = []
        try:
            client.register({})
            client.hot_sync()
            feedback = make_user(
                sample_population(1, seed=seed + 3)[0], seed=seed + 4
            )
            for index in range(100):
                run = client.run_script(
                    ["a" if index % 2 else "b"], feedback, task="word"
                )[0]
                expected.append(run.run_id)
                client.try_sync()  # chaos may fail it; results stay queued
            for _ in range(100):  # reconcile the tail
                if not len(client.results):
                    break
                client.try_sync()
        finally:
            transport.close()
            proxy.close()
            tcp.close()

        assert len(client.results) == 0, "client failed to flush under chaos"
        stored = sorted(r.run_id for r in server.results)
        assert stored == sorted(expected)  # exactly once: no loss, no dupes
        # The knobs were high enough that the run genuinely hurt.
        assert sum(proxy.injected.values()) > 20
        assert transport.retries > 0
