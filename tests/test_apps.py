"""Tests for the task models."""

import pytest

from repro.apps import ALL_TASKS, TASK_ORDER, TaskModel, get_task
from repro.errors import ValidationError


class TestRegistry:
    def test_order_matches_protocol(self):
        assert TASK_ORDER == ("word", "powerpoint", "ie", "quake")
        assert tuple(t.name for t in ALL_TASKS) == TASK_ORDER

    def test_get_task_case_insensitive(self):
        assert get_task("QUAKE").name == "quake"

    def test_unknown_task(self):
        with pytest.raises(ValidationError):
            get_task("emacs")

    def test_fresh_instances(self):
        assert get_task("word") == get_task("word")
        assert get_task("word") is not get_task("word")


class TestCharacterizations:
    """The paper's qualitative task characterizations (§3.2, §3.3.3)."""

    def test_quake_is_most_cpu_demanding(self):
        quake = get_task("quake")
        assert all(
            quake.cpu_demand >= t.cpu_demand for t in ALL_TASKS
        )
        assert quake.cpu_demand > 0.9

    def test_word_is_least_demanding(self):
        word = get_task("word")
        assert all(word.cpu_demand <= t.cpu_demand for t in ALL_TASKS)

    def test_ie_does_most_io(self):
        ie = get_task("ie")
        assert all(ie.io_fraction >= t.io_fraction for t in ALL_TASKS)

    def test_office_working_sets_static(self):
        # Word/Powerpoint form their set; IE/Quake stay dynamic.
        assert get_task("word").memory_dynamism < get_task("ie").memory_dynamism
        assert (
            get_task("powerpoint").memory_dynamism
            < get_task("quake").memory_dynamism
        )

    def test_quake_finest_interaction_grain(self):
        quake = get_task("quake")
        assert all(
            quake.interaction_period <= t.interaction_period for t in ALL_TASKS
        )
        assert quake.jitter_sensitivity > 0.9

    def test_interactivity_grain(self):
        assert get_task("quake").interactivity_grain == pytest.approx(
            1.0 / get_task("quake").interaction_period
        )


class TestValidation:
    def test_bounds_enforced(self):
        good = dict(
            name="t", cpu_demand=0.5, io_fraction=0.1, working_set=0.2,
            memory_dynamism=0.1, jitter_sensitivity=0.5,
            interaction_period=0.1,
        )
        TaskModel(**good)
        for key, bad in [
            ("cpu_demand", 0.0),
            ("cpu_demand", 1.5),
            ("io_fraction", -0.1),
            ("working_set", 0.0),
            ("memory_dynamism", 2.0),
            ("jitter_sensitivity", -1.0),
            ("interaction_period", 0.0),
            ("name", "has space"),
        ]:
            with pytest.raises(ValidationError):
                TaskModel(**{**good, key: bad})
