"""Tests for tolerance calibration (the paper-table substitution core)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paperdata
from repro.core.resources import Resource
from repro.errors import ValidationError
from repro.users.tolerance import (
    ToleranceSpec,
    ToleranceTable,
    calibrate_lognormal,
    paper_calibrated_table,
)


class TestCalibration:
    def test_closed_form_hits_both_targets(self):
        # mean condition: exp(mu + sigma^2/2) == c_a
        # quantile condition: p_react * F(c_05) == 0.05
        c_a, c_05, p_react = 1.17, 1.00, 0.95
        mu, sigma = calibrate_lognormal(c_a, c_05, p_react)
        assert math.exp(mu + sigma**2 / 2) == pytest.approx(c_a)
        from scipy.stats import norm

        f_c05 = norm.cdf((math.log(c_05) - mu) / sigma)
        assert p_react * f_c05 == pytest.approx(0.05, abs=1e-6)

    def test_fallback_without_c05(self):
        mu, sigma = calibrate_lognormal(2.0, None, 0.5)
        assert sigma == 0.6
        assert math.exp(mu + sigma**2 / 2) == pytest.approx(2.0)

    def test_fallback_when_quantile_infeasible(self):
        # p >= p_react: can't discomfort 5% if only 3% ever react.
        mu, sigma = calibrate_lognormal(2.0, 1.0, 0.03)
        assert sigma == 0.6

    def test_degenerate_c05_equals_ca(self):
        # z=0 with R=0 collapses sigma; falls back to the default.
        mu, sigma = calibrate_lognormal(0.64, 0.64, 0.10)
        assert sigma > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            calibrate_lognormal(-1.0, 0.5, 0.5)
        with pytest.raises(ValidationError):
            calibrate_lognormal(1.0, 0.5, 0.5, p=1.5)


class TestToleranceSpec:
    def test_never_react_spec(self):
        spec = ToleranceSpec("word", Resource.MEMORY, p_react=0.0, mu=0.0, sigma=1.0)
        rng = np.random.default_rng(0)
        assert all(math.isinf(spec.sample_threshold(rng)) for _ in range(50))
        assert math.isinf(spec.mean_threshold())
        assert spec.cdf(0.9) == 0.0

    def test_sampling_statistics(self):
        spec = ToleranceSpec("t", Resource.CPU, p_react=1.0, mu=0.0, sigma=0.25)
        rng = np.random.default_rng(1)
        draws = np.array([spec.sample_threshold(rng) for _ in range(4000)])
        assert np.mean(draws) == pytest.approx(spec.mean_threshold(), rel=0.05)

    def test_truncation_keeps_draws_in_range(self):
        spec = ToleranceSpec(
            "t", Resource.CPU, p_react=1.0, mu=0.0, sigma=1.0, range_max=1.5
        )
        rng = np.random.default_rng(2)
        draws = [spec.sample_threshold(rng) for _ in range(500)]
        assert max(draws) <= 1.5

    def test_p_react_fraction(self):
        spec = ToleranceSpec("t", Resource.CPU, p_react=0.3, mu=0.0, sigma=0.5)
        rng = np.random.default_rng(3)
        finite = sum(
            not math.isinf(spec.sample_threshold(rng)) for _ in range(4000)
        )
        assert finite / 4000 == pytest.approx(0.3, abs=0.03)

    def test_cdf_monotone(self):
        spec = ToleranceSpec("t", Resource.CPU, p_react=0.8, mu=0.0, sigma=0.5)
        values = [spec.cdf(x) for x in (0.1, 0.5, 1.0, 2.0, 10.0)]
        assert values == sorted(values)
        assert values[-1] <= 0.8 + 1e-9

    def test_validation(self):
        with pytest.raises(ValidationError):
            ToleranceSpec("t", Resource.CPU, p_react=1.5, mu=0.0, sigma=1.0)
        with pytest.raises(ValidationError):
            ToleranceSpec("t", Resource.CPU, p_react=0.5, mu=0.0, sigma=-1.0)
        with pytest.raises(ValidationError):
            ToleranceSpec(
                "t", Resource.CPU, p_react=0.5, mu=0.0, sigma=1.0, ramp_bonus=-1.0
            )


class TestPaperTable:
    def test_all_twelve_cells_present(self):
        table = paper_calibrated_table()
        assert len(table) == 12

    def test_starred_cell_never_reacts(self):
        table = paper_calibrated_table()
        spec = table.spec("word", Resource.MEMORY)
        assert spec.p_react == 0.0

    def test_cell_means_match_paper_ca(self):
        table = paper_calibrated_table()
        for task in paperdata.STUDY_TASKS:
            for resource in (Resource.CPU, Resource.MEMORY, Resource.DISK):
                published = paperdata.cell(task, resource)
                if published.c_a is None:
                    continue
                spec = table.spec(task, resource)
                assert spec.mean_threshold() == pytest.approx(
                    published.c_a, rel=1e-6
                )

    def test_frog_in_pot_bonus_pinned(self):
        table = paper_calibrated_table()
        spec = table.spec("powerpoint", Resource.CPU)
        assert spec.ramp_bonus == pytest.approx(
            paperdata.FROG_IN_POT["mean_difference"]
        )

    def test_unknown_cell_falls_back_to_never_react(self):
        table = paper_calibrated_table()
        spec = table.spec("emacs", Resource.CPU)
        assert spec.p_react == 0.0

    def test_empty_table_rejected(self):
        with pytest.raises(ValidationError):
            ToleranceTable({})

    def test_cells_listing(self):
        table = paper_calibrated_table()
        cells = table.cells()
        assert ("quake", Resource.CPU) in cells
        assert len(cells) == 12


@settings(max_examples=50)
@given(
    c_a=st.floats(min_value=0.1, max_value=8.0),
    ratio=st.floats(min_value=0.1, max_value=0.99),
    p_react=st.floats(min_value=0.1, max_value=1.0),
)
def test_property_calibration_mean_always_exact(c_a, ratio, p_react):
    c_05 = c_a * ratio
    mu, sigma = calibrate_lognormal(c_a, c_05, p_react)
    assert sigma > 0
    assert math.exp(mu + sigma**2 / 2) == pytest.approx(c_a, rel=1e-9)
