"""Tests for the simulated machine substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_task
from repro.core.resources import Resource
from repro.errors import ValidationError
from repro.machine import (
    MachineSpec,
    SimulatedMachine,
    cpu_share,
    cpu_slowdown,
    disk_slowdown,
    memory_pressure,
)
from repro.machine.scheduler import cpu_slowdown_vector


class TestSpecs:
    def test_dell_gx270_matches_figure7(self):
        spec = MachineSpec.dell_gx270()
        assert spec.memory_mb == 512
        assert spec.disk_gb == 80
        assert spec.cpu_speed == 1.0
        assert "quake3" in spec.installed

    def test_validation(self):
        with pytest.raises(ValidationError):
            MachineSpec(name="x", cpu_speed=0.0)
        with pytest.raises(ValidationError):
            MachineSpec(name="x", memory_mb=0)
        with pytest.raises(ValidationError):
            MachineSpec(name="x", os_resident_fraction=1.0)

    def test_random_host_deterministic(self):
        a = MachineSpec.random_internet_host(seed=3)
        b = MachineSpec.random_internet_host(seed=3)
        assert a == b

    def test_random_hosts_heterogeneous(self):
        speeds = {
            MachineSpec.random_internet_host(seed=i).cpu_speed
            for i in range(20)
        }
        assert len(speeds) > 10

    def test_snapshot_stringly(self):
        snap = MachineSpec.dell_gx270().snapshot()
        assert all(isinstance(v, str) for v in snap.values())
        assert snap["memory_mb"] == "512"

    def test_scaled(self):
        spec = MachineSpec.dell_gx270().scaled(cpu_speed=2.0)
        assert spec.cpu_speed == 2.0
        assert spec.memory_mb == 512


class TestCpuScheduler:
    def test_paper_example(self):
        # §2.2: contention 1.5 -> busy thread runs at 1/(1.5+1) = 40 %.
        assert cpu_share(1.5) == pytest.approx(0.4)
        assert cpu_slowdown(1.0, 1.5) == pytest.approx(2.5)

    def test_no_slowdown_in_spare_cycles(self):
        # A 10 %-demand task is untouched until its share drops below 10 %.
        assert cpu_slowdown(0.1, 1.0) == 1.0
        assert cpu_slowdown(0.1, 8.0) == 1.0
        assert cpu_slowdown(0.1, 9.5) == pytest.approx(1.05)

    def test_faster_host_tolerates_more(self):
        slow = cpu_slowdown(0.8, 2.0, cpu_speed=0.5)
        fast = cpu_slowdown(0.8, 2.0, cpu_speed=2.0)
        assert slow > fast

    def test_validation(self):
        with pytest.raises(ValidationError):
            cpu_slowdown(0.0, 1.0)
        with pytest.raises(ValidationError):
            cpu_slowdown(0.5, -1.0)
        with pytest.raises(ValidationError):
            cpu_share(-0.1)

    def test_vectorized_matches_scalar(self):
        contention = np.array([0.0, 0.5, 1.5, 5.0])
        vec = cpu_slowdown_vector(0.7, contention)
        scalars = [cpu_slowdown(0.7, float(c)) for c in contention]
        assert np.allclose(vec, scalars)


class TestMemoryModel:
    def test_no_pressure_below_capacity(self):
        spec = MachineSpec.dell_gx270()
        p = memory_pressure(spec, working_set=0.2, dynamism=0.5, borrowed=0.3)
        assert p.slowdown == 1.0
        assert p.overflow == 0.0

    def test_pressure_grows_with_borrowing(self):
        spec = MachineSpec.dell_gx270()
        low = memory_pressure(spec, 0.4, 0.5, 0.5)
        high = memory_pressure(spec, 0.4, 0.5, 0.9)
        assert high.slowdown > low.slowdown > 1.0

    def test_static_working_set_barely_hurt(self):
        # The paper's §3.3.3 observation: formed office working sets
        # tolerate borrowing; dynamic working sets (IE/Quake) do not.
        spec = MachineSpec.dell_gx270()
        static = memory_pressure(spec, 0.3, 0.04, 0.9)
        dynamic = memory_pressure(spec, 0.3, 0.5, 0.9)
        assert dynamic.slowdown > static.slowdown
        assert static.slowdown < 1.7

    def test_small_host_pages_sooner(self):
        big = MachineSpec.dell_gx270()
        small = MachineSpec(name="small", memory_mb=128)
        assert (
            memory_pressure(small, 0.3, 0.3, 0.3).slowdown
            > memory_pressure(big, 0.3, 0.3, 0.3).slowdown
        )

    def test_validation(self):
        spec = MachineSpec.dell_gx270()
        with pytest.raises(ValidationError):
            memory_pressure(spec, 0.3, 0.3, 1.5)
        with pytest.raises(ValidationError):
            memory_pressure(spec, 0.0, 0.3, 0.5)


class TestDiskModel:
    def test_io_free_task_untouched(self):
        assert disk_slowdown(0.0, 7.0) == 1.0

    def test_io_bound_task_full_inflation(self):
        assert disk_slowdown(1.0, 3.0) == pytest.approx(4.0)

    def test_partial(self):
        # 30 % I/O at contention 4: 0.7 + 0.3*5 = 2.2.
        assert disk_slowdown(0.3, 4.0) == pytest.approx(2.2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            disk_slowdown(1.5, 1.0)
        with pytest.raises(ValidationError):
            disk_slowdown(0.5, -1.0)


class TestSimulatedMachine:
    def test_interactivity_unloaded(self, machine, word_task):
        model = machine.interactivity_model(word_task)
        sample = model.interactivity({})
        assert sample.slowdown == 1.0
        assert sample.jitter <= 0.1

    def test_quake_more_sensitive_than_word(self, machine):
        levels = {Resource.CPU: 1.0}
        word = machine.interactivity_model(get_task("word")).interactivity(levels)
        quake = machine.interactivity_model(get_task("quake")).interactivity(levels)
        assert quake.slowdown > word.slowdown
        assert quake.jitter > word.jitter

    def test_memory_borrowing_multiplies(self, machine, quake_task):
        model = machine.interactivity_model(quake_task)
        without = model.interactivity({Resource.CPU: 1.0})
        with_mem = model.interactivity(
            {Resource.CPU: 1.0, Resource.MEMORY: 0.9}
        )
        assert with_mem.slowdown > without.slowdown

    def test_sample_load_saturation(self, machine, quake_task):
        load = machine.sample_load(quake_task, {Resource.CPU: 5.0})
        assert load.cpu_utilization == 1.0
        idle = machine.sample_load(None, {})
        assert idle.cpu_utilization == 0.0

    def test_sample_load_memory_adds_up(self, machine, word_task):
        load = machine.sample_load(word_task, {Resource.MEMORY: 0.5})
        spec = machine.spec
        expected = spec.os_resident_fraction + word_task.working_set + 0.5
        assert load.memory_used == pytest.approx(min(1.0, expected))

    def test_repr(self, machine):
        assert "dell-gx270" in repr(machine)


@settings(max_examples=60)
@given(
    demand=st.floats(min_value=0.01, max_value=1.0),
    c1=st.floats(min_value=0.0, max_value=10.0),
    c2=st.floats(min_value=0.0, max_value=10.0),
)
def test_property_cpu_slowdown_monotone(demand, c1, c2):
    lo, hi = sorted([c1, c2])
    assert cpu_slowdown(demand, lo) <= cpu_slowdown(demand, hi)
    assert cpu_slowdown(demand, lo) >= 1.0


@settings(max_examples=60)
@given(
    ws=st.floats(min_value=0.05, max_value=1.0),
    dyn=st.floats(min_value=0.0, max_value=1.0),
    b1=st.floats(min_value=0.0, max_value=1.0),
    b2=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_memory_pressure_monotone_in_borrowing(ws, dyn, b1, b2):
    spec = MachineSpec.dell_gx270()
    lo, hi = sorted([b1, b2])
    p_lo = memory_pressure(spec, ws, dyn, lo)
    p_hi = memory_pressure(spec, ws, dyn, hi)
    assert p_lo.slowdown <= p_hi.slowdown + 1e-9
    assert p_lo.overflow <= p_hi.overflow + 1e-9
