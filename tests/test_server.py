"""Tests for registry, sampler, server core, and the TCP transport."""

import pytest

from repro.core.exercise import constant
from repro.core.resources import Resource
from repro.core.testcase import Testcase
from repro.errors import RegistrationError, ValidationError
from repro.net import serve_transport
from repro.server import (
    ClientRegistry,
    GrowingSampler,
    InProcessTransport,
    Message,
    UUCSServer,
)


def tc(tcid):
    return Testcase.single(tcid, constant(Resource.CPU, 1.0, 10.0))


class TestRegistry:
    def test_register_assigns_unique_guids(self, tmp_path):
        registry = ClientRegistry(tmp_path)
        a = registry.register({"os": "xp"})
        b = registry.register({"os": "xp"})
        assert a.client_id != b.client_id
        assert len(registry) == 2

    def test_lookup(self, tmp_path):
        registry = ClientRegistry(tmp_path)
        record = registry.register({"cpu": "p4"}, now=5.0)
        found = registry.lookup(record.client_id)
        assert found.snapshot == {"cpu": "p4"}
        assert found.registered_at == 5.0

    def test_unknown_client(self, tmp_path):
        registry = ClientRegistry(tmp_path)
        with pytest.raises(RegistrationError):
            registry.lookup("ghost")

    def test_persistence_across_restart(self, tmp_path):
        first = ClientRegistry(tmp_path)
        record = first.register({"os": "xp"})
        second = ClientRegistry(tmp_path)
        assert record.client_id in second
        assert second.lookup(record.client_id).snapshot == {"os": "xp"}

    def test_memory_only_registry(self):
        registry = ClientRegistry()
        record = registry.register({})
        assert record.client_id in registry


class TestGrowingSampler:
    def test_never_resends_held(self):
        sampler = GrowingSampler(seed=1, default_batch=3)
        available = [f"t{i}" for i in range(10)]
        held = ["t0", "t1"]
        sample = sampler.sample(available, held)
        assert len(sample) == 3
        assert not set(sample) & set(held)

    def test_growing_acquisition_converges(self):
        sampler = GrowingSampler(seed=2, default_batch=4)
        available = [f"t{i}" for i in range(10)]
        held: list[str] = []
        for _ in range(5):
            held.extend(sampler.sample(available, held))
        assert sorted(held) == sorted(available)

    def test_want_zero(self):
        sampler = GrowingSampler(seed=3)
        assert sampler.sample(["a", "b"], [], want=0) == []

    def test_want_more_than_fresh(self):
        sampler = GrowingSampler(seed=4)
        assert sorted(sampler.sample(["a", "b"], [], want=10)) == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            GrowingSampler(default_batch=0)
        sampler = GrowingSampler()
        with pytest.raises(ValidationError):
            sampler.sample(["a"], [], want=-1)

    def test_random_not_prefix_biased(self):
        # Over many draws every testcase should get picked sometimes.
        sampler = GrowingSampler(seed=5, default_batch=1)
        available = [f"t{i}" for i in range(8)]
        seen = set()
        for _ in range(200):
            seen.update(sampler.sample(available, []))
        assert seen == set(available)


class TestServerCore:
    def make_server(self, tmp_path):
        server = UUCSServer(tmp_path, seed=1, sync_batch=2)
        server.add_testcases([tc("a"), tc("b"), tc("c")])
        return server

    def register(self, server):
        response = server.handle(Message("register", {"snapshot": {"os": "xp"}}))
        assert response.type == "registered"
        return response.payload["client_id"]

    def test_ping(self, tmp_path):
        assert self.make_server(tmp_path).handle(Message("ping", {})).type == "pong"

    def test_register_and_sync(self, tmp_path):
        server = self.make_server(tmp_path)
        client_id = self.register(server)
        response = server.handle(
            Message("sync", {"client_id": client_id, "have": [],
                             "results": [], "want": 2})
        )
        assert response.type == "sync_ok"
        assert len(response.payload["testcases"]) == 2

    def test_sync_requires_registration(self, tmp_path):
        server = self.make_server(tmp_path)
        response = server.handle(
            Message("sync", {"client_id": "ghost", "have": [], "results": []})
        )
        assert response.is_error

    def test_register_requires_snapshot(self, tmp_path):
        server = self.make_server(tmp_path)
        assert server.handle(Message("register", {})).is_error

    def test_sync_validates_fields(self, tmp_path):
        server = self.make_server(tmp_path)
        client_id = self.register(server)
        bad_have = server.handle(
            Message("sync", {"client_id": client_id, "have": "x", "results": []})
        )
        assert bad_have.is_error
        bad_want = server.handle(
            Message("sync", {"client_id": client_id, "have": [],
                             "results": [], "want": -1})
        )
        assert bad_want.is_error
        bad_results = server.handle(
            Message("sync", {"client_id": client_id, "have": [],
                             "results": ["nope"]})
        )
        assert bad_results.is_error

    def test_responses_never_raise_for_client_mistakes(self, tmp_path):
        server = self.make_server(tmp_path)
        assert server.handle(Message("registered", {})).is_error


class TestTCPTransport:
    def test_full_exchange_over_tcp(self, tmp_path):
        server = UUCSServer(tmp_path, seed=1)
        server.add_testcases([tc("a")])
        with serve_transport(server) as listener:
            with listener.connect() as transport:
                pong = transport.request(Message("ping", {}))
                assert pong.type == "pong"
                reg = transport.request(
                    Message("register", {"snapshot": {}})
                ).expect("registered")
                sync = transport.request(
                    Message("sync", {"client_id": reg.payload["client_id"],
                                     "have": [], "results": [], "want": 5})
                ).expect("sync_ok")
                assert len(sync.payload["testcases"]) == 1

    def test_multiple_clients(self, tmp_path):
        server = UUCSServer(tmp_path, seed=2)
        with serve_transport(server) as listener:
            transports = [listener.connect() for _ in range(4)]
            try:
                ids = set()
                for transport in transports:
                    reg = transport.request(
                        Message("register", {"snapshot": {}})
                    ).expect("registered")
                    ids.add(reg.payload["client_id"])
                assert len(ids) == 4
            finally:
                for transport in transports:
                    transport.close()


class TestInProcessTransport:
    def test_routes_through_codec(self, tmp_path):
        server = UUCSServer(tmp_path, seed=1)
        transport = InProcessTransport(server)
        response = transport.request(Message("ping", {}))
        assert response.type == "pong"
        transport.close()


class TestPerClientRollups:
    def make_run(self, run_id, discomforted=True):
        from repro.core.feedback import DiscomfortEvent, RunOutcome
        from repro.core.run import RunContext, TestcaseRun

        outcome = RunOutcome.DISCOMFORT if discomforted else RunOutcome.EXHAUSTED
        return TestcaseRun(
            run_id=run_id,
            testcase_id="a",
            context=RunContext(user_id="u1", task="word", started_at=1.0),
            outcome=outcome,
            end_offset=5.0 if discomforted else 10.0,
            testcase_duration=10.0,
            levels_at_end={Resource.CPU: 1.5},
            feedback=DiscomfortEvent(offset=5.0, levels={Resource.CPU: 1.5})
            if discomforted else None,
        ).to_dict()

    def test_sync_accumulates_per_client(self, tmp_path):
        from repro.telemetry import Telemetry

        server = UUCSServer(tmp_path, seed=1, telemetry=Telemetry())
        server.add_testcases([tc("a")])
        reg = server.handle(Message("register", {"snapshot": {}}))
        client_id = reg.payload["client_id"]
        server.handle(Message("sync", {
            "client_id": client_id, "have": [],
            "results": [self.make_run("r1"), self.make_run("r2", False)],
        })).expect("sync_ok")
        server.handle(Message("sync", {
            "client_id": client_id, "have": ["a"], "results": [],
        })).expect("sync_ok")
        server.record_client_bytes(client_id, read=64, written=256)

        row = server.rollups.get(client_id)
        assert row.syncs == 2
        assert row.results == 2
        assert row.discomforts == 1
        assert row.bytes_read == 64
        assert row.bytes_written == 256
        metrics = server.telemetry.metrics
        counter = metrics.counter(
            "uucs_server_client_discomforts_total", labelnames=("client",)
        )
        assert counter.value(client=client_id) == 1

    def test_rollups_idle_when_telemetry_disabled(self, tmp_path):
        server = UUCSServer(tmp_path, seed=1)
        server.add_testcases([tc("a")])
        reg = server.handle(Message("register", {"snapshot": {}}))
        client_id = reg.payload["client_id"]
        server.handle(Message("sync", {
            "client_id": client_id, "have": [], "results": [],
        })).expect("sync_ok")
        server.record_client_bytes(client_id, read=10, written=10)
        assert len(server.rollups) == 0

    def test_tcp_transport_attributes_bytes(self, tmp_path):
        from repro.telemetry import Telemetry

        server = UUCSServer(tmp_path, seed=1, telemetry=Telemetry())
        server.add_testcases([tc("a")])
        with serve_transport(server) as listener:
            with listener.connect() as transport:
                reg = transport.request(
                    Message("register", {"snapshot": {}})
                ).expect("registered")
                client_id = reg.payload["client_id"]
                transport.request(
                    Message("sync", {"client_id": client_id,
                                     "have": [], "results": [], "want": 1})
                ).expect("sync_ok")
        row = server.rollups.get(client_id)
        assert row is not None
        assert row.syncs == 1
        assert row.bytes_read > 0
        assert row.bytes_written > 0
