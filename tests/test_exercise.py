"""Tests for exercise functions (paper §2.1, Figures 3-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exercise import (
    blank,
    composite,
    constant,
    expexp,
    exppar,
    ramp,
    sawtooth,
    sine,
    step,
)
from repro.core.resources import CONTENTION_LIMITS, Resource
from repro.errors import ValidationError


class TestStep:
    def test_figure4_step(self):
        fn = step(Resource.CPU, 2.0, 120.0, 40.0)
        assert fn.duration == 120.0
        assert fn.level_at(0.0) == 0.0
        assert fn.level_at(39.9) == 0.0
        assert fn.level_at(40.0) == 2.0
        assert fn.level_at(119.0) == 2.0
        assert fn.shape == "step"

    def test_step_validates_breakpoint(self):
        with pytest.raises(ValidationError):
            step(Resource.CPU, 1.0, 100.0, 100.0)
        with pytest.raises(ValidationError):
            step(Resource.CPU, 1.0, 100.0, -5.0)

    def test_step_at_time_zero(self):
        fn = step(Resource.CPU, 3.0, 10.0, 0.0)
        assert fn.level_at(0.0) == 3.0


class TestRamp:
    def test_figure4_ramp(self):
        fn = ramp(Resource.CPU, 2.0, 120.0)
        assert fn.duration == 120.0
        assert fn.level_at(0.0) == 0.0
        assert fn.max_level() == pytest.approx(2.0)
        # Monotone non-decreasing throughout.
        assert np.all(np.diff(fn.values) >= 0)

    def test_ramp_midpoint(self):
        fn = ramp(Resource.CPU, 4.0, 100.0, sample_rate=10.0)
        assert fn.level_at(50.0) == pytest.approx(2.0, abs=0.05)

    def test_single_sample_ramp(self):
        fn = ramp(Resource.CPU, 1.0, 1.0, sample_rate=1.0)
        assert len(fn.values) == 1
        assert fn.max_level() == 1.0


class TestOscillators:
    def test_sine_nonnegative_by_default(self):
        fn = sine(Resource.CPU, amplitude=1.5, period=30.0, t=120.0)
        assert fn.series.min() >= 0.0
        assert fn.max_level() <= 3.0 + 1e-9

    def test_sine_custom_offset(self):
        fn = sine(Resource.CPU, 1.0, 10.0, 40.0, offset=2.0)
        assert fn.series.mean() == pytest.approx(2.0, abs=0.2)

    def test_sine_validation(self):
        with pytest.raises(ValidationError):
            sine(Resource.CPU, -1.0, 10.0, 40.0)
        with pytest.raises(ValidationError):
            sine(Resource.CPU, 1.0, 0.0, 40.0)

    def test_sawtooth_period(self):
        fn = sawtooth(Resource.CPU, 2.0, 10.0, 30.0, sample_rate=10.0)
        assert fn.level_at(0.0) == 0.0
        assert fn.level_at(9.9) == pytest.approx(1.98, abs=0.05)
        assert fn.level_at(10.0) == pytest.approx(0.0, abs=0.05)

    def test_sawtooth_validation(self):
        with pytest.raises(ValidationError):
            sawtooth(Resource.CPU, 1.0, -3.0, 30.0)


class TestQueueing:
    def test_expexp_deterministic_with_seed(self):
        a = expexp(Resource.CPU, 0.1, 20.0, 300.0, seed=42)
        b = expexp(Resource.CPU, 0.1, 20.0, 300.0, seed=42)
        assert np.array_equal(a.values, b.values)

    def test_expexp_occupancy_is_integerish_and_capped(self):
        fn = expexp(Resource.CPU, 0.5, 30.0, 300.0, seed=1)
        assert np.all(fn.values == np.round(fn.values))
        assert fn.max_level() <= CONTENTION_LIMITS[Resource.CPU]

    def test_expexp_busier_with_higher_load(self):
        light = expexp(Resource.CPU, 0.02, 5.0, 600.0, seed=3)
        heavy = expexp(Resource.CPU, 0.2, 20.0, 600.0, seed=3)
        assert heavy.series.mean() > light.series.mean()

    def test_exppar_deterministic_and_capped(self):
        fn = exppar(Resource.DISK, 0.1, 1.5, 10.0, 300.0, seed=7)
        assert fn.max_level() <= CONTENTION_LIMITS[Resource.DISK]
        assert fn.shape == "exppar"

    def test_queueing_validation(self):
        with pytest.raises(ValidationError):
            expexp(Resource.CPU, 0.0, 5.0, 60.0)
        with pytest.raises(ValidationError):
            exppar(Resource.CPU, 0.1, 0.0, 1.0, 60.0)


class TestBlankConstantComposite:
    def test_blank_is_blank(self):
        fn = blank(Resource.CPU, 120.0)
        assert fn.is_blank()
        assert fn.max_level() == 0.0

    def test_constant(self):
        fn = constant(Resource.MEMORY, 0.5, 60.0)
        assert fn.level_at(30.0) == 0.5
        assert not fn.is_blank()

    def test_composite_concatenates(self):
        a = constant(Resource.CPU, 1.0, 10.0)
        b = constant(Resource.CPU, 2.0, 10.0)
        fn = composite(a, b)
        assert fn.duration == 20.0
        assert fn.level_at(5.0) == 1.0
        assert fn.level_at(15.0) == 2.0

    def test_composite_rejects_mixed_resources(self):
        with pytest.raises(ValidationError):
            composite(
                constant(Resource.CPU, 1.0, 10.0),
                constant(Resource.DISK, 1.0, 10.0),
            )

    def test_composite_rejects_mixed_rates(self):
        with pytest.raises(ValidationError):
            composite(
                constant(Resource.CPU, 1.0, 10.0, sample_rate=1.0),
                constant(Resource.CPU, 1.0, 10.0, sample_rate=2.0),
            )

    def test_composite_needs_parts(self):
        with pytest.raises(ValidationError):
            composite()


class TestEnvelope:
    def test_levels_beyond_limit_rejected(self):
        with pytest.raises(ValidationError):
            constant(Resource.MEMORY, 1.5, 10.0)
        with pytest.raises(ValidationError):
            ramp(Resource.CPU, 100.0, 10.0)

    def test_negative_level_rejected(self):
        with pytest.raises(ValidationError):
            constant(Resource.CPU, -0.5, 10.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValidationError):
            ramp(Resource.CPU, 1.0, 0.0)

    def test_with_resource_retargets(self):
        fn = ramp(Resource.CPU, 1.0, 10.0)
        fn2 = fn.with_resource(Resource.DISK)
        assert fn2.resource is Resource.DISK
        assert np.array_equal(fn2.values, fn.values)

    def test_last_values_at_feedback(self):
        fn = ramp(Resource.CPU, 5.0, 100.0)
        last = fn.last_values(50.0)
        assert len(last) == 5
        assert np.all(np.diff(last) > 0)


@settings(max_examples=50)
@given(
    x=st.floats(min_value=0.01, max_value=10.0),
    t=st.floats(min_value=1.0, max_value=600.0),
    rate=st.sampled_from([1.0, 2.0, 4.0]),
)
def test_property_ramp_monotone_peak_at_end(x, t, rate):
    fn = ramp(Resource.CPU, x, t, sample_rate=rate)
    assert np.all(np.diff(fn.values) >= -1e-12)
    assert fn.values[-1] == pytest.approx(x)
    assert fn.values[0] <= x


@settings(max_examples=50)
@given(
    x=st.floats(min_value=0.01, max_value=10.0),
    t=st.floats(min_value=2.0, max_value=600.0),
    b_frac=st.floats(min_value=0.0, max_value=0.95),
)
def test_property_step_two_valued(x, t, b_frac):
    b = b_frac * t
    fn = step(Resource.CPU, x, t, b)
    unique = set(np.round(fn.values, 12))
    assert unique <= {0.0, round(x, 12)}
    assert fn.values[-1] == pytest.approx(x)
