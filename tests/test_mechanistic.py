"""Tests for the mechanistic (slowdown-based) user model."""

import pytest

from repro.apps import get_task
from repro.core.exercise import ramp
from repro.core.resources import Resource
from repro.core.run import RunContext
from repro.core.session import run_simulated_session
from repro.core.testcase import Testcase
from repro.errors import ValidationError
from repro.machine import MachineSpec, SimulatedMachine
from repro.users.mechanistic import MechanisticUser, SlowdownTolerance
from repro.users.profile import UserProfile


def run_cpu_ramp(user, machine, task, x=8.0, t=120.0):
    model = machine.interactivity_model(task)
    tc = Testcase.single("r", ramp(Resource.CPU, x, t, 2.0))
    return run_simulated_session(
        tc, user, RunContext(user_id="u", task=task.name), model
    ).run


def profile(**kwargs):
    defaults = dict(user_id="u", tolerance_factor=1.0, reaction_delay_mean=0.5)
    defaults.update(kwargs)
    return UserProfile(**defaults)


class TestMechanisticReactions:
    def test_quake_reacts_word_tolerates(self, machine):
        quake = get_task("quake")
        word = get_task("word")
        quake_run = run_cpu_ramp(
            MechanisticUser(profile(), quake.jitter_sensitivity, seed=1),
            machine, quake,
        )
        word_run = run_cpu_ramp(
            MechanisticUser(profile(), word.jitter_sensitivity, seed=1),
            machine, word,
        )
        assert quake_run.discomforted
        if word_run.discomforted:
            assert (
                word_run.discomfort_level(Resource.CPU)
                > quake_run.discomfort_level(Resource.CPU)
            )

    def test_faster_host_reacts_later(self):
        quake = get_task("quake")
        slow = SimulatedMachine(MachineSpec.dell_gx270().scaled(cpu_speed=0.5))
        fast = SimulatedMachine(MachineSpec.dell_gx270().scaled(cpu_speed=2.0))
        slow_run = run_cpu_ramp(
            MechanisticUser(profile(), quake.jitter_sensitivity, seed=2),
            slow, quake,
        )
        fast_run = run_cpu_ramp(
            MechanisticUser(profile(), quake.jitter_sensitivity, seed=2),
            fast, quake,
        )
        assert slow_run.discomforted
        slow_level = slow_run.discomfort_level(Resource.CPU)
        fast_level = (
            fast_run.discomfort_level(Resource.CPU)
            if fast_run.discomforted
            else 8.0
        )
        assert fast_level > slow_level

    def test_degradation_must_be_sustained(self, machine):
        quake = get_task("quake")
        user = MechanisticUser(
            profile(reaction_delay_mean=3.0), quake.jitter_sensitivity, seed=3
        )
        model = machine.interactivity_model(quake)
        # A ramp so short the delay cannot elapse after crossing.
        tc = Testcase.single("r", ramp(Resource.CPU, 1.0, 4.0, 2.0))
        run = run_simulated_session(
            tc, user, RunContext(user_id="u", task="quake"), model
        ).run
        assert run.exhausted or run.end_offset > 0


class TestValidation:
    def test_tolerance_bounds(self):
        with pytest.raises(ValidationError):
            SlowdownTolerance(slowdown_median=1.0)
        with pytest.raises(ValidationError):
            SlowdownTolerance(slowdown_sigma=-0.1)
        with pytest.raises(ValidationError):
            SlowdownTolerance(jitter_threshold=0.0)

    def test_jitter_sensitivity_bounds(self):
        with pytest.raises(ValidationError):
            MechanisticUser(profile(), jitter_sensitivity=1.5)

    def test_repr(self):
        assert "u" in repr(MechanisticUser(profile(), 0.5))
