"""Tests for the Internet-wide study simulation."""

import pytest

from repro.core.resources import CONTENTION_LIMITS, Resource
from repro.errors import StudyError
from repro.study import (
    InternetStudyConfig,
    generate_library,
    host_speed_effect,
    run_internet_study,
)


@pytest.fixture(scope="module")
def internet_result():
    config = InternetStudyConfig(
        n_clients=12,
        duration=4 * 3600.0,
        mean_execution_interval=700.0,
        sync_interval=3600.0,
        library_size=50,
        seed=77,
    )
    return run_internet_study(config)


class TestLibrary:
    def test_size_and_uniqueness(self):
        library = generate_library(100, seed=1)
        assert len(library) == 100
        assert len({t.testcase_id for t in library}) == 100

    def test_deterministic(self):
        a = generate_library(30, seed=2)
        b = generate_library(30, seed=2)
        assert [t.testcase_id for t in a] == [t.testcase_id for t in b]

    def test_predominantly_queueing_models(self):
        library = generate_library(300, seed=3)
        queueing = sum(
            1
            for t in library
            if any(fn.shape in ("expexp", "exppar") for fn in t.functions.values())
        )
        assert queueing / len(library) > 0.4

    def test_levels_within_limits(self):
        for testcase in generate_library(100, seed=4):
            for resource, fn in testcase.functions.items():
                assert fn.max_level() <= CONTENTION_LIMITS[resource] + 1e-9

    def test_rejects_empty(self):
        with pytest.raises(StudyError):
            generate_library(0)


class TestFleetOperation:
    def test_every_client_registers(self, internet_result):
        assert len(internet_result.specs) == 12

    def test_results_reach_server(self, internet_result):
        assert len(internet_result.runs) > 50
        # Runs carry the registered client GUIDs.
        for run in internet_result.runs:
            assert run.context.client_id in internet_result.specs

    def test_runs_cover_multiple_testcases_and_tasks(self, internet_result):
        testcases = {r.testcase_id for r in internet_result.runs}
        tasks = {r.context.task for r in internet_result.runs}
        assert len(testcases) > 10
        assert len(tasks) >= 3

    def test_both_outcomes_present(self, internet_result):
        outcomes = {r.outcome.value for r in internet_result.runs}
        assert "discomfort" in outcomes
        assert "exhausted" in outcomes

    def test_deterministic(self):
        config = InternetStudyConfig(
            n_clients=3, duration=3600.0, mean_execution_interval=600.0,
            library_size=20, seed=5,
        )
        a = run_internet_study(config)
        b = run_internet_study(config)
        assert [r.run_id for r in a.runs] == [r.run_id for r in b.runs]

    def test_explicit_root_keeps_stores(self, tmp_path):
        config = InternetStudyConfig(
            n_clients=2, duration=1800.0, mean_execution_interval=400.0,
            library_size=10, seed=6,
        )
        run_internet_study(config, root=tmp_path)
        assert (tmp_path / "server").exists()
        assert (tmp_path / "client-0000").exists()

    def test_config_validation(self):
        with pytest.raises(StudyError):
            InternetStudyConfig(n_clients=0)
        with pytest.raises(StudyError):
            InternetStudyConfig(duration=0.0)


class TestHostSpeedEffect:
    def test_bins_cover_all_runs(self, internet_result):
        bins = host_speed_effect(internet_result, Resource.CPU, n_groups=2)
        assert len(bins) == 2
        total = sum(b.n_runs for b in bins)
        assert total == len(internet_result.runs_for_resource(Resource.CPU))
        assert bins[0].mean_speed < bins[1].mean_speed

    def test_too_few_runs_returns_empty(self, internet_result):
        assert host_speed_effect(internet_result, Resource.NETWORK) == []


class TestDiscomfortCurve:
    def test_km_corrects_naive_on_fleet_data(self, internet_result):
        from repro.core.resources import Resource as R
        from repro.study import internet_discomfort_curve

        km, naive = internet_discomfort_curve(internet_result, R.CPU)
        assert km.n_observations == naive.n
        # KM dominates the naive curve wherever censoring occurred below
        # the level (heterogeneous peaks guarantee some).
        for level in (1.0, 2.0, 4.0):
            assert km.evaluate(level) >= naive.evaluate(level) - 1e-9
        # And strictly exceeds it somewhere in the explored range.
        levels = km.levels
        assert any(
            km.evaluate(float(l)) > naive.evaluate(float(l)) + 1e-9
            for l in levels
        )

    def test_empty_resource_raises(self, internet_result):
        from repro.core.resources import Resource as R
        from repro.errors import StudyError
        from repro.study import internet_discomfort_curve

        with pytest.raises(StudyError):
            internet_discomfort_curve(internet_result, R.NETWORK)
