"""Integrity checks on the transcribed paper data.

These guard against transcription typos by asserting the published
tables' *internal* consistency — relations that must hold between the
paper's own numbers.
"""

import pytest

from repro import paperdata
from repro.core.resources import CONTENTION_LIMITS, Resource

RESOURCES = (Resource.CPU, Resource.MEMORY, Resource.DISK)


class TestCellTable:
    def test_grid_complete(self):
        for task in [*paperdata.STUDY_TASKS, "total"]:
            for resource in RESOURCES:
                cell = paperdata.cell(task, resource)
                assert 0.0 <= cell.f_d <= 1.0

    def test_c05_at_most_ca(self):
        for cell in paperdata.CELL_TABLE.values():
            if cell.c_05 is not None and cell.c_a is not None:
                assert cell.c_05 <= cell.c_a + 1e-9, cell

    def test_ci_brackets_mean(self):
        for cell in paperdata.CELL_TABLE.values():
            if cell.c_a is not None:
                assert cell.c_a_low <= cell.c_a <= cell.c_a_high, cell

    def test_starred_cells_consistent(self):
        # A cell with no c_a has no c_05 and (near-)zero f_d.
        for cell in paperdata.CELL_TABLE.values():
            if cell.c_a is None:
                assert cell.c_05 is None
                assert cell.f_d == 0.0

    def test_thresholds_within_explored_ramps(self):
        # c_a cannot exceed the ramp maximum that produced it.
        for (task, resource), (x, _) in paperdata.RAMP_PARAMS.items():
            cell = paperdata.cell(task, resource)
            if cell.c_a is not None:
                assert cell.c_a <= x + 1e-9, (task, resource)

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            paperdata.cell("emacs", Resource.CPU)


class TestProtocolTables:
    def test_ramp_and_step_cover_all_cells(self):
        keys = {
            (task, resource)
            for task in paperdata.STUDY_TASKS
            for resource in RESOURCES
        }
        assert set(paperdata.RAMP_PARAMS) == keys
        assert set(paperdata.STEP_PARAMS) == keys

    def test_all_testcases_two_minutes(self):
        for x, t in paperdata.RAMP_PARAMS.values():
            assert t == 120.0
        for x, t, b in paperdata.STEP_PARAMS.values():
            assert t == 120.0 and b == 40.0

    def test_levels_within_hard_caps(self):
        for (task, resource), (x, _) in paperdata.RAMP_PARAMS.items():
            assert x <= CONTENTION_LIMITS[resource], (task, resource)
        for (task, resource), (x, _, _) in paperdata.STEP_PARAMS.items():
            assert x <= CONTENTION_LIMITS[resource], (task, resource)

    def test_memory_ramps_full_range(self):
        for task in paperdata.STUDY_TASKS:
            assert paperdata.RAMP_PARAMS[(task, Resource.MEMORY)][0] == 1.0

    def test_step_level_at_most_ramp_level(self):
        # Steps were calibrated inside the ramps' explored ranges.
        for task in paperdata.STUDY_TASKS:
            for resource in RESOURCES:
                ramp_x = paperdata.RAMP_PARAMS[(task, resource)][0]
                step_x = paperdata.STEP_PARAMS[(task, resource)][0]
                assert step_x <= ramp_x + 1e-9, (task, resource)


class TestFig9Consistency:
    def test_totals_are_column_sums(self):
        for key in ("nonblank", "blank"):
            for i in (0, 1):
                total = paperdata.FIG9_COUNTS["total"][key][i]
                parts = sum(
                    paperdata.FIG9_COUNTS[task][key][i]
                    for task in paperdata.STUDY_TASKS
                )
                assert total == parts, (key, i)

    def test_blank_probabilities_match_counts(self):
        for task in paperdata.STUDY_TASKS:
            df, ex = paperdata.FIG9_COUNTS[task]["blank"]
            expected = df / (df + ex)
            assert paperdata.BLANK_DISCOMFORT_PROB[task] == pytest.approx(
                expected, abs=0.015
            )


class TestFig17:
    def test_rows_reference_valid_cells(self):
        for task, resource, category, high, low, p, diff in (
            paperdata.FIG17_SKILL_DIFFS
        ):
            assert task in paperdata.STUDY_TASKS
            assert resource in RESOURCES
            assert category in ("pc", "windows", "word", "powerpoint",
                                "ie", "quake")
            assert 0.0 < p < 0.05
            assert diff > 0.0
