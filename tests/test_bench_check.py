"""The perf-regression gate (benchmarks/bench_check.py).

The gate's contract: matched cells may not lose more than the
tolerance on throughput, nor gain more than it on latency above the
noise floor; correctness digests get no tolerance at all; disappearing
cells fail and new cells don't.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_check",
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_check.py",
)
bench_check = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_check)


def study_report():
    return {
        "benchmark": "sharded controlled study (repro.study.sharded)",
        "results": [
            {"shards": 1, "runs_per_second": 1000.0, "sha256": "aa",
             "byte_identical_to_1_shard": True},
            {"shards": 4, "runs_per_second": 2000.0, "sha256": "aa",
             "byte_identical_to_1_shard": True},
        ],
    }


def server_report():
    return {
        "benchmark": "UUCS server backends (repro.net)",
        "results": [
            {"backend": "threading", "clients": 32,
             "requests_per_second": 2500.0, "p50_ms": 0.3, "p99_ms": 20.0},
            {"backend": "asyncio", "clients": 32,
             "requests_per_second": 2600.0, "p50_ms": 0.25, "p99_ms": 0.5},
        ],
    }


def scheduler_report():
    return {
        "benchmark": "harvesting scheduler fleet (repro.scheduler)",
        "results": [
            {"policy": "static", "budget": 0.1, "decisions_per_second": 90000.0,
             "harvested_resource_hours": 500.0, "discomfort_rate": 0.28,
             "sha256": "cc"},
            {"policy": "cdf", "budget": 0.1, "decisions_per_second": 40000.0,
             "harvested_resource_hours": 650.0, "discomfort_rate": 0.10,
             "sha256": "dd"},
            {"policy": "cdf", "budget": 0.1, "shards": 2, "sha256": "dd",
             "byte_identical_to_1_shard": True},
        ],
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        regressions, _ = bench_check.compare_reports(
            study_report(), study_report()
        )
        assert regressions == []

    def test_small_wobble_within_tolerance_passes(self):
        current = study_report()
        current["results"][1]["runs_per_second"] = 1500.0  # -25%
        regressions, _ = bench_check.compare_reports(
            study_report(), current, tolerance=0.30
        )
        assert regressions == []

    def test_throughput_drop_beyond_tolerance_fails(self):
        current = study_report()
        current["results"][1]["runs_per_second"] = 1300.0  # -35%
        regressions, _ = bench_check.compare_reports(
            study_report(), current, tolerance=0.30
        )
        (regression,) = regressions
        assert "shards=4" in regression
        assert "runs_per_second" in regression
        assert "35.0% below" in regression

    def test_latency_rise_above_floor_fails(self):
        current = server_report()
        current["results"][0]["p99_ms"] = 40.0  # +100% on a 20ms baseline
        regressions, _ = bench_check.compare_reports(
            server_report(), current
        )
        (regression,) = regressions
        assert "threading x 32 clients" in regression
        assert "p99_ms" in regression

    def test_sub_floor_latency_noise_is_ignored(self):
        """0.25ms -> 0.9ms is a 260% 'regression' of pure scheduler
        noise; the absolute floor keeps it out of the gate."""
        current = server_report()
        current["results"][1]["p50_ms"] = 0.9
        current["results"][1]["p99_ms"] = 0.99
        regressions, _ = bench_check.compare_reports(
            server_report(), current, latency_floor_ms=1.0
        )
        assert regressions == []

    def test_missing_cell_fails(self):
        current = study_report()
        current["results"] = current["results"][:1]
        regressions, _ = bench_check.compare_reports(study_report(), current)
        assert any("shards=4" in r and "missing" in r for r in regressions)

    def test_new_cell_is_a_note_not_a_failure(self):
        current = study_report()
        current["results"].append(
            {"shards": 8, "runs_per_second": 100.0, "sha256": "aa",
             "byte_identical_to_1_shard": True}
        )
        regressions, notes = bench_check.compare_reports(
            study_report(), current
        )
        assert regressions == []
        assert any("shards=8" in n and "new cell" in n for n in notes)

    def test_improvement_is_noted(self):
        current = study_report()
        current["results"][1]["runs_per_second"] = 3000.0
        regressions, notes = bench_check.compare_reports(
            study_report(), current
        )
        assert regressions == []
        assert any("improved" in n for n in notes)

    def test_digest_change_fails_with_no_tolerance(self):
        current = study_report()
        current["results"][1]["sha256"] = "bb"
        regressions, _ = bench_check.compare_reports(
            study_report(), current, tolerance=10.0
        )
        assert any("sha256 changed" in r for r in regressions)

    def test_shard_divergence_fails_in_either_report(self):
        bad = study_report()
        bad["results"][1]["byte_identical_to_1_shard"] = False
        for baseline, current in ((bad, study_report()), (study_report(), bad)):
            regressions, _ = bench_check.compare_reports(baseline, current)
            assert any("diverged" in r for r in regressions)

    def test_scheduler_pareto_dominance_is_noted(self):
        regressions, notes = bench_check.compare_reports(
            scheduler_report(), scheduler_report()
        )
        assert regressions == []
        assert any("Pareto-dominates" in n for n in notes)

    def test_scheduler_cdf_losing_harvest_fails(self):
        current = scheduler_report()
        current["results"][1]["harvested_resource_hours"] = 500.0  # tie
        regressions, _ = bench_check.compare_reports(
            scheduler_report(), current, tolerance=10.0
        )
        assert any("not\nstrictly more" in r or "strictly more" in r
                   for r in regressions)

    def test_scheduler_cdf_higher_discomfort_fails(self):
        current = scheduler_report()
        current["results"][1]["discomfort_rate"] = 0.30
        regressions, _ = bench_check.compare_reports(
            scheduler_report(), current, tolerance=10.0
        )
        assert any("discomfort rate" in r for r in regressions)

    def test_scheduler_pareto_is_absolute_not_baseline_relative(self):
        """The contract binds the current report even when the committed
        baseline already violated it."""
        bad = scheduler_report()
        bad["results"][1]["harvested_resource_hours"] = 100.0
        regressions, _ = bench_check.compare_reports(bad, bad)
        assert any("strictly more" in r for r in regressions)

    def test_scheduler_policy_cells_keyed_distinctly(self):
        keys = {
            bench_check._cell_key(scheduler_report(), cell)
            for cell in scheduler_report()["results"]
        }
        assert len(keys) == 3

    def test_scheduler_throughput_drop_fails(self):
        current = scheduler_report()
        current["results"][1]["decisions_per_second"] = 10000.0  # -75%
        regressions, _ = bench_check.compare_reports(
            scheduler_report(), current
        )
        assert any("decisions_per_second" in r for r in regressions)

    def test_mismatched_report_families_fail(self):
        regressions, _ = bench_check.compare_reports(
            study_report(), server_report()
        )
        assert any("report mismatch" in r for r in regressions)


class TestCli:
    def write(self, path, report):
        path.write_text(json.dumps(report))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        base = self.write(tmp_path / "base.json", study_report())
        assert bench_check.main([base, base]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = self.write(tmp_path / "base.json", study_report())
        bad = copy.deepcopy(study_report())
        bad["results"][1]["runs_per_second"] = 100.0
        curr = self.write(tmp_path / "curr.json", bad)
        assert bench_check.main([base, curr]) == 1
        assert "REGRESSION:" in capsys.readouterr().err

    def test_unreadable_report_exit_two(self, tmp_path, capsys):
        base = self.write(tmp_path / "base.json", study_report())
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert bench_check.main([base, str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_tolerance_flag(self, tmp_path):
        base = self.write(tmp_path / "base.json", study_report())
        wobble = copy.deepcopy(study_report())
        wobble["results"][1]["runs_per_second"] = 1500.0  # -25%
        curr = self.write(tmp_path / "curr.json", wobble)
        assert bench_check.main([base, curr, "--tolerance", "0.2"]) == 1
        assert bench_check.main([base, curr, "--tolerance", "0.3"]) == 0


def test_committed_baselines_load():
    """The baselines the CI gate compares against must stay parseable."""
    root = Path(__file__).resolve().parent.parent
    for name in ("BENCH_study.json", "BENCH_server.json",
                 "BENCH_dashboard.json", "BENCH_scheduler.json"):
        report = bench_check.load_report(root / name)
        assert report["results"], name
