"""Tests for the sharded multiprocess study engine.

The contract (ROADMAP: "the bit-identical engine-equivalence tests
define the contract"): any shard count yields byte-identical serialized
run records to the single-process path.  Partitioning, merge, process
pools (fork and spawn), telemetry, and the ResultStore wiring are all
exercised; hypothesis drives random small configs through 1-vs-k shard
equivalence and merge order-invariance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import StudyError
from repro.stores import ResultStore
from repro.study import (
    ControlledStudyConfig,
    merge_shard_batches,
    resolve_shards,
    run_controlled_study,
    run_sharded_study,
    run_user_range,
    shard_ranges,
    study_fixtures,
)
from repro.study.sharded import _run_shard
from shardcheck import assert_shard_equivalence, serialized_records, study_digest


class TestShardRanges:
    def test_balanced_contiguous_cover(self):
        shards = shard_ranges(33, 4)
        assert [s.n_users for s in shards] == [9, 8, 8, 8]
        assert shards[0].start == 0
        assert shards[-1].stop == 33
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start

    def test_more_shards_than_users_drops_empties(self):
        shards = shard_ranges(3, 8)
        assert len(shards) == 3
        assert all(s.n_users == 1 for s in shards)

    def test_single_shard(self):
        (only,) = shard_ranges(7, 1)
        assert (only.start, only.stop) == (0, 7)

    def test_invalid_rejected(self):
        with pytest.raises(StudyError):
            shard_ranges(0, 2)
        with pytest.raises(StudyError):
            shard_ranges(5, 0)

    @given(
        n_users=st.integers(min_value=1, max_value=200),
        n_shards=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_partition_invariants(self, n_users, n_shards):
        shards = shard_ranges(n_users, n_shards)
        covered = [i for s in shards for i in range(s.start, s.stop)]
        assert covered == list(range(n_users))
        sizes = [s.n_users for s in shards]
        assert max(sizes) - min(sizes) <= 1
        assert [s.index for s in shards] == list(range(len(shards)))


class TestResolveShards:
    def test_auto_sizes_pool_from_cpu_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        assert resolve_shards("auto", 33) == 4

    def test_auto_clamps_to_user_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 64)
        assert resolve_shards("auto", 33) == 33
        assert resolve_shards("AUTO", 1) == 1  # case-insensitive

    def test_auto_survives_unknown_cpu_count(self, monkeypatch):
        # os.cpu_count() may return None on exotic platforms.
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert resolve_shards("auto", 33) == 1

    def test_numeric_specs_pass_through(self):
        assert resolve_shards(3, 33) == 3
        assert resolve_shards("8", 33) == 8
        # A count above the user total is legal; shard_ranges drops empties.
        assert resolve_shards(100, 33) == 100

    def test_invalid_specs_rejected(self):
        for bad in ("zero", "", "2.5", 0, -1, "0"):
            with pytest.raises(StudyError):
                resolve_shards(bad, 33)
        with pytest.raises(StudyError):
            resolve_shards("auto", 0)


class TestUserRange:
    def test_range_concatenation_equals_full_run(self):
        config = ControlledStudyConfig(n_users=4, seed=11, tasks=("word",))
        full = run_user_range(config, 0, 4)
        pieces = run_user_range(config, 0, 1) + run_user_range(config, 1, 4)
        assert pieces == full

    def test_out_of_range_rejected(self):
        config = ControlledStudyConfig(n_users=2, seed=1)
        with pytest.raises(StudyError):
            run_user_range(config, 0, 3)
        with pytest.raises(StudyError):
            run_user_range(config, -1, 2)
        with pytest.raises(StudyError):
            run_user_range(config, 2, 1)


class TestShardedEquivalence:
    def test_pool_equivalence_small_config(self):
        config = ControlledStudyConfig(n_users=5, seed=77, tasks=("word", "quake"))
        assert_shard_equivalence(config, shard_counts=(2, 4))

    def test_spawn_context_equivalence(self):
        # The spawn-safety half of the contract: workers rebuilt from
        # pickled arguments in a fresh interpreter still draw the exact
        # bytes the sequential engine would.
        config = ControlledStudyConfig(n_users=2, seed=5, tasks=("word",))
        assert_shard_equivalence(config, shard_counts=(2,), mp_context="spawn")

    def test_shards_beyond_users(self):
        config = ControlledStudyConfig(n_users=2, seed=3, tasks=("word",))
        a = run_controlled_study(config)
        b = run_sharded_study(config, shards=16)
        assert serialized_records(a) == serialized_records(b)

    def test_max_workers_cap(self):
        config = ControlledStudyConfig(n_users=4, seed=13, tasks=("word",))
        a = run_controlled_study(config)
        b = run_sharded_study(config, shards=4, max_workers=2)
        assert serialized_records(a) == serialized_records(b)

    def test_profiles_and_config_preserved(self):
        config = ControlledStudyConfig(n_users=3, seed=21, tasks=("word",))
        a = run_controlled_study(config)
        b = run_sharded_study(config, shards=3)
        assert a.profiles == b.profiles
        assert b.config == config

    def test_invalid_shards_rejected(self):
        with pytest.raises(StudyError):
            run_sharded_study(ControlledStudyConfig(n_users=2), shards=0)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_users=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    engine=st.sampled_from(["analytic", "loop"]),
    k=st.integers(min_value=2, max_value=4),
    tasks=st.sampled_from([("word",), ("ie", "quake"), ("powerpoint",)]),
)
def test_property_one_vs_k_shards_identical_store(
    tmp_path_factory, n_users, seed, engine, k, tasks
):
    """Random small configs: the ResultStore written from a k-shard run
    holds byte-identical contents to the 1-shard store."""
    config = ControlledStudyConfig(
        n_users=n_users, seed=seed, engine=engine, tasks=tasks
    )
    single = run_controlled_study(config)
    # In-process shard execution (the same function pool workers run)
    # keeps hypothesis fast while still covering partition + merge.
    shards = shard_ranges(config.n_users, k)
    batches = [(s, _run_shard(config, s.start, s.stop)) for s in shards]
    merged = merge_shard_batches(batches)

    root = tmp_path_factory.mktemp("shardstore")
    store_a = ResultStore(root / "single")
    store_a.extend(single.runs)
    store_b = ResultStore(root / "sharded")
    store_b.extend_batches([batch for _, batch in sorted(
        batches, key=lambda item: item[0].start)])
    assert store_a.path.read_bytes() == store_b.path.read_bytes()
    assert [r.to_json() for r in merged] == [r.to_json() for r in single.runs]


@settings(max_examples=10, deadline=None)
@given(
    n_users=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=2, max_value=5),
    shuffle_seed=st.integers(min_value=0, max_value=999),
)
def test_property_merge_is_order_invariant(n_users, seed, k, shuffle_seed):
    """Shard completion order must not leak into the merged sequence."""
    config = ControlledStudyConfig(n_users=n_users, seed=seed, tasks=("word",))
    shards = shard_ranges(config.n_users, k)
    fixtures = study_fixtures(config)
    batches = [
        (s, run_user_range(config, s.start, s.stop, fixtures)) for s in shards
    ]
    reference = merge_shard_batches(batches)
    shuffled = list(batches)
    np.random.default_rng(shuffle_seed).shuffle(shuffled)
    assert merge_shard_batches(shuffled) == reference


class TestMergeValidation:
    def test_gap_rejected(self):
        config = ControlledStudyConfig(n_users=4, seed=2, tasks=("word",))
        shards = shard_ranges(4, 4)
        batches = [
            (s, run_user_range(config, s.start, s.stop))
            for s in shards
            if s.index != 1
        ]
        with pytest.raises(StudyError, match="discontiguous"):
            merge_shard_batches(batches)

    def test_empty_rejected(self):
        with pytest.raises(StudyError):
            merge_shard_batches([])


class TestShardedTelemetry:
    def test_shard_metrics_recorded(self):
        from repro.telemetry import Telemetry, use_telemetry

        config = ControlledStudyConfig(n_users=3, seed=8, tasks=("word",))
        with use_telemetry(Telemetry.in_memory()) as telemetry:
            run_sharded_study(config, shards=3)
            metrics = telemetry.metrics
            histogram = metrics.get("uucs_study_shard_seconds")
            assert histogram is not None
            workers = metrics.get("uucs_study_shard_workers_total")
            assert workers.value() == 3
            runs_total = metrics.get("uucs_study_shard_runs_total")
            assert sum(
                runs_total.value(shard=str(i)) for i in range(3)
            ) == 3 * 8
            names = [e.name for e in telemetry.events.sink.events]
            assert "study.shard" in names
            assert "study.complete" in names

    def test_disabled_telemetry_stays_silent(self):
        # The default hub is disabled; neither the sequential nor the
        # sharded driver may touch events, metrics, or the span clock.
        from repro.telemetry import EventLog, MemorySink, Telemetry, set_telemetry

        calls = {"clock": 0}

        def loud_clock():
            calls["clock"] += 1
            return 0.0

        silent = Telemetry(
            events=EventLog(MemorySink()),
            enabled=False,
            span_clock=loud_clock,
        )
        config = ControlledStudyConfig(n_users=2, seed=4, tasks=("word",))
        previous = set_telemetry(silent)
        try:
            run_controlled_study(config)
            run_sharded_study(config, shards=2)
        finally:
            set_telemetry(previous)
        assert calls["clock"] == 0, "span clock consulted while disabled"
        assert len(silent.metrics) == 0, "metrics created while disabled"
        assert list(silent.events.sink) == [], "events emitted while disabled"

    def test_no_timer_reads_in_hot_loop_when_disabled(self, monkeypatch):
        # Per-session wall-time belongs to telemetry; with the hub
        # disabled the engines must not read the clock at all (a
        # time.time()/perf_counter() delta per run is pure overhead).
        import time as time_mod

        real = time_mod.perf_counter
        calls = {"n": 0}

        def counting_perf_counter():
            calls["n"] += 1
            return real()

        monkeypatch.setattr(time_mod, "perf_counter", counting_perf_counter)
        config = ControlledStudyConfig(n_users=2, seed=6, tasks=("word",))
        for engine in ("analytic", "loop"):
            run_controlled_study(
                ControlledStudyConfig(
                    n_users=config.n_users,
                    seed=config.seed,
                    tasks=config.tasks,
                    engine=engine,
                )
            )
        assert calls["n"] == 0, (
            f"{calls['n']} timer reads in the hot loop with telemetry disabled"
        )


class TestStudyProgress:
    def test_callback_sequence_and_eta(self):
        from repro.study import StudyProgress

        config = ControlledStudyConfig(n_users=4, seed=3, tasks=("word",))
        seen: list[StudyProgress] = []
        run_sharded_study(config, shards=4, on_progress=seen.append)
        assert len(seen) == 4  # one per completed shard
        assert [p.shards_done for p in seen] == [1, 2, 3, 4]
        assert all(p.shards_total == 4 and p.users == 4 for p in seen)
        ratios = [p.progress_ratio for p in seen]
        assert ratios == sorted(ratios) and ratios[-1] == 1.0
        final = seen[-1]
        assert final.users_done == 4
        assert final.runs == 4 * 8
        assert final.elapsed_s > 0
        assert final.eta_s == pytest.approx(0.0)
        # Mid-study ETA extrapolates from observed throughput.
        assert seen[0].eta_s is not None and seen[0].eta_s >= 0

    def test_callback_without_telemetry_emits_no_metrics(self):
        from repro.telemetry import get_telemetry

        config = ControlledStudyConfig(n_users=2, seed=4, tasks=("word",))
        seen = []
        run_sharded_study(config, shards=2, on_progress=seen.append)
        assert len(seen) == 2
        assert len(get_telemetry().metrics) == 0  # default hub untouched

    def test_progress_gauges_recorded(self):
        from repro.telemetry import Telemetry, use_telemetry

        config = ControlledStudyConfig(n_users=3, seed=8, tasks=("word",))
        with use_telemetry(Telemetry.in_memory()) as telemetry:
            run_sharded_study(config, shards=3)
            metrics = telemetry.metrics
            assert metrics.get("uucs_study_progress_ratio").value() == 1.0
            assert metrics.get("uucs_study_users").value() == 3
            assert metrics.get("uucs_study_users_done").value() == 3
            shard_gauge = metrics.get("uucs_study_shard_progress_ratio")
            assert all(
                shard_gauge.value(shard=str(i)) == 1.0 for i in range(3)
            )
            assert metrics.get("uucs_study_runs_per_second").value() > 0

    def test_single_shard_skips_progress(self):
        seen = []
        config = ControlledStudyConfig(n_users=2, seed=5, tasks=("word",))
        run_sharded_study(config, shards=1, on_progress=seen.append)
        assert seen == []  # the 1-shard fast path is the sequential driver

    def test_progress_dataclass_derivations(self):
        from repro.study import StudyProgress

        half = StudyProgress(
            shards_total=4, shards_done=2, users=8, users_done=4,
            runs=32, elapsed_s=2.0,
        )
        assert half.progress_ratio == 0.5
        assert half.runs_per_s == pytest.approx(16.0)
        assert half.eta_s == pytest.approx(2.0)  # same pace for the rest
        empty = StudyProgress(
            shards_total=2, shards_done=0, users=0, users_done=0,
            runs=0, elapsed_s=0.0,
        )
        assert empty.progress_ratio == 1.0
        assert empty.runs_per_s is None and empty.eta_s is None
