"""Public-API surface checks: every exported name resolves and is
documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.apps",
    "repro.client",
    "repro.core",
    "repro.exercisers",
    "repro.machine",
    "repro.monitor",
    "repro.net",
    "repro.scheduler",
    "repro.server",
    "repro.stores",
    "repro.study",
    "repro.telemetry",
    "repro.throttle",
    "repro.users",
    "repro.util",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert module.__all__, f"{package} exports nothing"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_sorted_unique(package):
    module = importlib.import_module(package)
    names = list(module.__all__)
    assert len(names) == len(set(names)), f"{package} has duplicate exports"


@pytest.mark.parametrize("package", PACKAGES)
def test_exports_documented(package):
    module = importlib.import_module(package)
    assert (module.__doc__ or "").strip(), f"{package} lacks a docstring"
    for name in module.__all__:
        obj = getattr(module, name)
        if callable(obj) or isinstance(obj, type):
            assert (getattr(obj, "__doc__", None) or "").strip(), (
                f"{package}.{name} lacks a docstring"
            )


def test_version_consistent():
    import repro

    import tomllib

    with open("pyproject.toml", "rb") as fh:
        pyproject = tomllib.load(fh)
    assert repro.__version__ == pyproject["project"]["version"]
