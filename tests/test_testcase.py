"""Tests for Testcase construction and text serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exercise import blank, constant, expexp, ramp, step
from repro.core.resources import Resource
from repro.core.testcase import Testcase
from repro.errors import SerializationError, ValidationError


def make_testcase(**meta):
    return Testcase(
        "tc-1",
        {
            Resource.CPU: ramp(Resource.CPU, 2.0, 120.0),
            Resource.MEMORY: blank(Resource.MEMORY, 120.0),
        },
        meta,
    )


class TestConstruction:
    def test_properties(self):
        tc = make_testcase()
        assert tc.sample_rate == 1.0
        assert tc.duration == 120.0
        assert tc.resources == (Resource.CPU, Resource.MEMORY)

    def test_id_validation(self):
        with pytest.raises(ValidationError):
            Testcase("", {Resource.CPU: ramp(Resource.CPU, 1.0, 10.0)})
        with pytest.raises(ValidationError):
            Testcase("has space", {Resource.CPU: ramp(Resource.CPU, 1.0, 10.0)})

    def test_needs_functions(self):
        with pytest.raises(ValidationError):
            Testcase("tc", {})

    def test_rejects_mixed_rates(self):
        with pytest.raises(ValidationError):
            Testcase(
                "tc",
                {
                    Resource.CPU: ramp(Resource.CPU, 1.0, 10.0, sample_rate=1.0),
                    Resource.DISK: ramp(Resource.DISK, 1.0, 10.0, sample_rate=2.0),
                },
            )

    def test_rejects_mismatched_key(self):
        with pytest.raises(ValidationError):
            Testcase("tc", {Resource.DISK: ramp(Resource.CPU, 1.0, 10.0)})

    def test_single_constructor(self):
        tc = Testcase.single("s", constant(Resource.DISK, 1.0, 10.0))
        assert tc.resources == (Resource.DISK,)


class TestSemantics:
    def test_levels_at(self):
        tc = make_testcase()
        levels = tc.levels_at(119.0)
        assert levels[Resource.MEMORY] == 0.0
        assert levels[Resource.CPU] > 1.9

    def test_levels_after_function_end_are_zero(self):
        tc = Testcase(
            "tc",
            {
                Resource.CPU: constant(Resource.CPU, 1.0, 10.0),
                Resource.DISK: constant(Resource.DISK, 1.0, 20.0),
            },
        )
        assert tc.duration == 20.0
        assert tc.levels_at(15.0) == {Resource.CPU: 0.0, Resource.DISK: 1.0}

    def test_blankness(self):
        assert Testcase.single("b", blank(Resource.CPU, 10.0)).is_blank()
        assert not make_testcase().is_blank()

    def test_primary_resource(self):
        assert make_testcase().primary_resource() is Resource.CPU
        blank_tc = Testcase.single("b", blank(Resource.CPU, 10.0))
        assert blank_tc.primary_resource() is Resource.CPU

    def test_primary_resource_ambiguous(self):
        tc = Testcase(
            "tc",
            {
                Resource.CPU: constant(Resource.CPU, 1.0, 10.0),
                Resource.DISK: constant(Resource.DISK, 1.0, 10.0),
            },
        )
        with pytest.raises(ValidationError):
            tc.primary_resource()

    def test_last_values(self):
        tc = make_testcase()
        last = tc.last_values(60.0)
        assert len(last[Resource.CPU]) == 5
        assert len(last[Resource.MEMORY]) == 5

    def test_unique_resources(self):
        tcs = [
            Testcase.single("a", constant(Resource.CPU, 1.0, 5.0)),
            Testcase.single("b", constant(Resource.DISK, 1.0, 5.0)),
        ]
        assert Testcase.unique_resources(tcs) == {Resource.CPU, Resource.DISK}


class TestSerialization:
    def test_roundtrip(self):
        tc = make_testcase(task="word", study="controlled")
        restored = Testcase.from_text(tc.to_text())
        assert restored.testcase_id == tc.testcase_id
        assert restored.metadata == dict(tc.metadata)
        assert restored.resources == tc.resources
        for resource in tc.resources:
            assert np.array_equal(
                restored.functions[resource].values,
                tc.functions[resource].values,
            )
            assert restored.functions[resource].shape == tc.functions[resource].shape

    def test_roundtrip_preserves_params(self):
        tc = Testcase.single("s", step(Resource.CPU, 2.0, 120.0, 40.0))
        restored = Testcase.from_text(tc.to_text())
        fn = restored.functions[Resource.CPU]
        assert fn.params == {"x": 2.0, "t": 120.0, "b": 40.0}

    def test_stochastic_functions_ship_exact_values(self):
        # Clients replay exactly what the server generated.
        tc = Testcase.single("q", expexp(Resource.CPU, 0.1, 10.0, 120.0, seed=5))
        restored = Testcase.from_text(tc.to_text())
        assert np.array_equal(
            restored.functions[Resource.CPU].values,
            tc.functions[Resource.CPU].values,
        )

    def test_comments_and_blank_lines_ignored(self):
        text = make_testcase().to_text()
        noisy = "# a comment\n" + text.replace("\nid:", "\n\n# mid\nid:")
        assert Testcase.from_text(noisy).testcase_id == "tc-1"

    def test_missing_header(self):
        with pytest.raises(SerializationError):
            Testcase.from_text("id: x\nEND\n")

    def test_missing_end(self):
        text = make_testcase().to_text().replace("END\n", "")
        with pytest.raises(SerializationError):
            Testcase.from_text(text)

    def test_malformed_line(self):
        text = make_testcase().to_text().replace("id: tc-1", "id tc-1")
        with pytest.raises(SerializationError):
            Testcase.from_text(text)

    def test_values_before_function(self):
        with pytest.raises(SerializationError):
            Testcase.from_text(
                "UUCS-TESTCASE 1\nid: x\nsample_rate: 1.0\nvalues: 1 2\nEND\n"
            )

    def test_incomplete(self):
        with pytest.raises(SerializationError):
            Testcase.from_text("UUCS-TESTCASE 1\nid: x\nEND\n")

    def test_metadata_rejects_newlines(self):
        tc = make_testcase(**{"key": "bad\nvalue"})
        with pytest.raises(SerializationError):
            tc.to_text()


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(min_value=0.1, max_value=8.0),
    t=st.floats(min_value=5.0, max_value=300.0),
    rate=st.sampled_from([1.0, 2.0, 4.0]),
    resource=st.sampled_from([Resource.CPU, Resource.DISK]),
    meta=st.dictionaries(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll",)),
            min_size=1,
            max_size=8,
        ),
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            max_size=12,
        ),
        max_size=4,
    ),
)
def test_property_text_roundtrip(x, t, rate, resource, meta):
    tc = Testcase.single(
        "prop-tc", ramp(resource, x, t, sample_rate=rate), meta
    )
    restored = Testcase.from_text(tc.to_text())
    assert restored.testcase_id == tc.testcase_id
    assert restored.sample_rate == tc.sample_rate
    assert restored.metadata == dict(meta)
    assert np.array_equal(
        restored.functions[resource].values, tc.functions[resource].values
    )
