"""Tests for idempotent hot sync: sync_seq bookkeeping, server-side
run-id dedupe, protocol version negotiation, and restart persistence."""

import pytest

from repro.client import ClientConfig, UUCSClient
from repro.core.exercise import constant
from repro.core.feedback import RunOutcome
from repro.core.resources import Resource
from repro.core.run import RunContext, TestcaseRun
from repro.core.testcase import Testcase
from repro.errors import TransportError
from repro.server import (
    PROTOCOL_VERSION,
    ClientRegistry,
    InProcessTransport,
    Message,
    UUCSServer,
)
from repro.stores import ResultStore
from repro.telemetry import Telemetry
from repro.users import make_user, sample_population


def tc(tcid):
    return Testcase.single(tcid, constant(Resource.CPU, 1.0, 10.0))


def run_record(run_id):
    return TestcaseRun(
        run_id=run_id,
        testcase_id="a",
        context=RunContext(user_id="u"),
        outcome=RunOutcome.EXHAUSTED,
        end_offset=10.0,
        testcase_duration=10.0,
        shapes={Resource.CPU: "constant"},
    )


def sync_payload(client_id, run_ids, sync_seq=None):
    payload = {
        "client_id": client_id,
        "have": [],
        "results": [run_record(rid).to_dict() for rid in run_ids],
        "want": 0,
    }
    if sync_seq is not None:
        payload["protocol"] = PROTOCOL_VERSION
        payload["sync_seq"] = sync_seq
    return Message("sync", payload)


@pytest.fixture()
def server(tmp_path):
    server = UUCSServer(tmp_path / "server", seed=1)
    server.add_testcases([tc("a"), tc("b")])
    return server


def register(server):
    return server.handle(
        Message("register", {"snapshot": {}})
    ).payload["client_id"]


class TestResultStoreDedupe:
    def test_extend_dedupes_by_run_id(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.extend([run_record("r1"), run_record("r2")], dedupe=True) == 2
        assert store.extend([run_record("r1"), run_record("r3")], dedupe=True) == 1
        assert sorted(store.run_ids()) == ["r1", "r2", "r3"]
        assert len(store) == 3  # nothing written twice

    def test_contains_uses_index(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(run_record("r1"))
        assert "r1" in store
        assert "ghost" not in store

    def test_index_survives_reopen(self, tmp_path):
        ResultStore(tmp_path).append(run_record("r1"))
        reopened = ResultStore(tmp_path)
        assert reopened.extend([run_record("r1")], dedupe=True) == 0

    def test_drain_resets_index(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(run_record("r1"))
        store.drain()
        assert "r1" not in store
        # Post-drain the same run_id is accepted again (client-side store
        # semantics; the server never drains).
        assert store.extend([run_record("r1")], dedupe=True) == 1

    def test_extend_without_dedupe_appends_blindly(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.extend([run_record("r1"), run_record("r1")]) == 2
        assert len(store) == 2


class TestServerIdempotentSync:
    def test_ack_echoes_sync_seq(self, server):
        client_id = register(server)
        response = server.handle(sync_payload(client_id, ["r1"], sync_seq=1))
        assert response.type == "sync_ok"
        assert response.payload["sync_seq"] == 1
        assert response.payload["accepted"] == 1
        assert response.payload["duplicates"] == 0
        assert response.payload["protocol"] == PROTOCOL_VERSION

    def test_replayed_batch_accepts_zero(self, server):
        client_id = register(server)
        server.handle(sync_payload(client_id, ["r1", "r2"], sync_seq=1))
        # The ack was lost; the client resends the identical batch.
        replay = server.handle(sync_payload(client_id, ["r1", "r2"], sync_seq=1))
        assert replay.type == "sync_ok"
        assert replay.payload["accepted"] == 0
        assert replay.payload["duplicates"] == 2
        assert replay.payload["sync_seq"] == 1  # still acked
        assert sorted(server.results.run_ids()) == ["r1", "r2"]

    def test_stale_seq_with_new_runs_still_accepted(self, server):
        """Dedupe is per run-id, not per batch: a replayed seq carrying
        runs recorded after the lost ack must not drop them."""
        client_id = register(server)
        server.handle(sync_payload(client_id, ["r1"], sync_seq=1))
        response = server.handle(
            sync_payload(client_id, ["r1", "r2-new"], sync_seq=1)
        )
        assert response.payload["accepted"] == 1
        assert response.payload["duplicates"] == 1
        assert sorted(server.results.run_ids()) == ["r1", "r2-new"]

    def test_v1_client_without_sync_seq_still_works(self, server):
        client_id = register(server)
        response = server.handle(sync_payload(client_id, ["r1"]))
        assert response.type == "sync_ok"
        assert response.payload["accepted"] == 1
        assert "sync_seq" not in response.payload
        # Even v1 clients are protected by run-id dedupe on blind resend.
        replay = server.handle(sync_payload(client_id, ["r1"]))
        assert replay.payload["accepted"] == 0
        assert len(server.results) == 1

    @pytest.mark.parametrize("bad", [0, -3, True, "7", 1.5])
    def test_rejects_bad_sync_seq(self, server, bad):
        client_id = register(server)
        message = sync_payload(client_id, [], sync_seq=None)
        message.payload["sync_seq"] = bad
        response = server.handle(message)
        assert response.type == "error"
        assert "sync_seq" in response.payload["reason"]

    def test_duplicate_metrics_and_event(self, tmp_path):
        telemetry = Telemetry.in_memory()
        server = UUCSServer(tmp_path / "srv", seed=1, telemetry=telemetry)
        server.add_testcases([tc("a")])
        client_id = register(server)
        server.handle(sync_payload(client_id, ["r1"], sync_seq=1))
        server.handle(sync_payload(client_id, ["r1"], sync_seq=1))
        counter = telemetry.metrics.counter("uucs_server_duplicate_results_total")
        assert counter.value() == 1
        replays = telemetry.metrics.counter("uucs_server_replayed_syncs_total")
        assert replays.value() == 1
        names = [e.name for e in telemetry.events.sink.events]
        assert "server.sync_replay" in names


class TestAckPersistence:
    def test_registry_acks_survive_restart(self, tmp_path):
        first = ClientRegistry(tmp_path)
        guid = first.register({}).client_id
        first.record_sync_ack(guid, 3, 5)
        second = ClientRegistry(tmp_path)
        assert second.last_acked(guid) == (3, 5)
        assert second.last_acked("stranger") == (0, 0)

    def test_non_monotonic_acks_ignored(self, tmp_path):
        registry = ClientRegistry(tmp_path)
        guid = registry.register({}).client_id
        registry.record_sync_ack(guid, 4, 2)
        registry.record_sync_ack(guid, 3, 9)  # late/replayed: ignored
        assert registry.last_acked(guid) == (4, 2)

    def test_torn_ack_line_skipped(self, tmp_path):
        registry = ClientRegistry(tmp_path)
        guid = registry.register({}).client_id
        registry.record_sync_ack(guid, 1, 1)
        with (tmp_path / "sync_acks.jsonl").open("a") as fh:
            fh.write('{"client_id": "' + guid + '", "sync')  # crashed writer
        reloaded = ClientRegistry(tmp_path)
        assert reloaded.last_acked(guid) == (1, 1)

    def test_server_restart_remembers_acks(self, tmp_path):
        root = tmp_path / "server"
        server = UUCSServer(root, seed=1)
        server.add_testcases([tc("a")])
        client_id = register(server)
        server.handle(sync_payload(client_id, ["r1"], sync_seq=1))
        # The whole server process restarts from disk.
        reborn = UUCSServer(root, seed=2)
        reborn.add_testcases([tc("a")])
        replay = reborn.handle(sync_payload(client_id, ["r1"], sync_seq=1))
        assert replay.payload["accepted"] == 0
        assert sorted(reborn.results.run_ids()) == ["r1"]


class _V1DowngradingTransport:
    """Wraps InProcessTransport, stripping v2 fields both ways — what
    talking to a pre-sync_seq server looks like."""

    def __init__(self, server):
        self._inner = InProcessTransport(server)

    def request(self, message):
        payload = {
            k: v for k, v in message.payload.items()
            if k not in ("sync_seq", "protocol")
        }
        response = self._inner.request(Message(message.type, payload))
        payload = {
            k: v for k, v in response.payload.items()
            if k not in ("sync_seq", "protocol", "duplicates")
        }
        return Message(response.type, payload)


class TestClientSyncState:
    def _ready_client(self, tmp_path, server, transport=None):
        client = UUCSClient(
            ClientConfig(root=tmp_path / "client", user_id="u"),
            transport or InProcessTransport(server),
            seed=1,
        )
        client.register({})
        client.hot_sync()
        return client

    def _record_run(self, client):
        feedback = make_user(sample_population(1, seed=2)[0], seed=3)
        return client.run_script([client.testcases.ids()[0]], feedback)[0]

    def test_acked_seq_advances_and_persists(self, tmp_path, server):
        client = self._ready_client(tmp_path, server)
        assert client.acked_seq == 1  # the initial (empty) sync
        assert client.server_protocol == PROTOCOL_VERSION
        self._record_run(client)
        client.hot_sync()
        assert client.acked_seq == 2
        # A restarted client process resumes the sequence from disk.
        reborn = UUCSClient(
            ClientConfig(root=tmp_path / "client", user_id="u"),
            InProcessTransport(server),
            seed=4,
        )
        assert reborn.acked_seq == 2
        assert reborn.registered

    def test_unacked_sync_keeps_seq_and_results(self, tmp_path, server):
        client = self._ready_client(tmp_path, server)
        run = self._record_run(client)
        seq_before = client.acked_seq

        class Mute:
            def request(self, message):
                raise TransportError("cable cut")

        client._transport = Mute()
        outcome = client.try_sync()
        assert not outcome.ok and outcome.pending == 1
        assert client.acked_seq == seq_before
        # Back online: the same seq is finally acked, exactly once stored.
        client._transport = InProcessTransport(server)
        _, uploaded = client.hot_sync()
        assert uploaded == 1
        assert client.acked_seq == seq_before + 1
        assert run.run_id in server.results

    def test_v1_server_full_acceptance_acks(self, tmp_path, server):
        client = self._ready_client(
            tmp_path, server, transport=_V1DowngradingTransport(server)
        )
        assert client.server_protocol == 0  # nothing ever announced
        self._record_run(client)
        _, uploaded = client.hot_sync()
        assert uploaded == 1
        assert len(client.results) == 0
        assert len(server.results) == 1

    def test_v1_server_short_acceptance_keeps_queue(self, tmp_path, server):
        """Without a seq echo, a short count is the only loss signal, so
        the client must keep its queue."""
        client = self._ready_client(tmp_path, server)
        run = self._record_run(client)
        # Seed the server store so the v1 sync "accepts" 0 of 1.
        server.results.append(run)

        client_v1 = UUCSClient(
            ClientConfig(root=client._config.root, user_id="u"),
            _V1DowngradingTransport(server),
            seed=5,
        )
        _, uploaded = client_v1.hot_sync()
        assert uploaded == 0
        assert len(client_v1.results) == 1  # kept, not drained
