"""Tests for the controlled host-speed experiment."""

import pytest

from repro.errors import StudyError
from repro.study import run_host_speed_experiment


class TestHostSpeedExperiment:
    def test_speed_reduces_discomfort(self):
        points = run_host_speed_experiment(
            speeds=(0.5, 2.0), n_users=12, seed=606
        )
        slow, fast = points
        assert slow.cpu_speed == 0.5 and fast.cpu_speed == 2.0
        assert slow.f_d > fast.f_d

    def test_run_counts(self):
        points = run_host_speed_experiment(
            speeds=(1.0,), n_users=5, tasks=("quake",), seed=1
        )
        assert points[0].n_runs == 5

    def test_population_identical_across_speeds(self):
        # Determinism across the whole experiment.
        a = run_host_speed_experiment(speeds=(1.0, 2.0), n_users=4, seed=3)
        b = run_host_speed_experiment(speeds=(1.0, 2.0), n_users=4, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(StudyError):
            run_host_speed_experiment(n_users=0)
        with pytest.raises(StudyError):
            run_host_speed_experiment(speeds=())
        with pytest.raises(StudyError):
            run_host_speed_experiment(speeds=(0.0,), n_users=2)
