"""Tests for repro.util.tables."""

import math

import pytest

from repro.util.tables import TextTable, format_float


class TestFormatFloat:
    def test_basic(self):
        assert format_float(1.2345) == "1.23"
        assert format_float(1.2345, digits=3) == "1.234"

    def test_star_for_none_and_nan(self):
        assert format_float(None) == "*"
        assert format_float(math.nan) == "*"
        assert format_float(None, star="--") == "--"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable("Title", ["A", "BB"])
        table.add_row("x", 1)
        table.add_row("longer", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "A" in lines[2] and "BB" in lines[2]
        assert "longer" in text and "22" in text
        # All data rows share column starts.
        assert lines[4].index("1") == lines[5].index("22")

    def test_row_arity_enforced(self):
        table = TextTable("T", ["A", "B"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_extend_and_str(self):
        table = TextTable("T", ["A"])
        table.extend([["1"], ["2"]])
        assert str(table).count("\n") >= 5
