# UUCS reproduction — common workflows.

PYTHON ?= python

.PHONY: install test lint bench bench-check trace-demo reproduce examples validate clean help

help:
	@echo "install     editable install (falls back to setup.py develop offline)"
	@echo "test        run the test suite"
	@echo "lint        static checks (ruff, else pyflakes, else compileall)"
	@echo "bench       run all benchmarks (regenerates benchmarks/artifacts/)"
	@echo "bench-check fresh perf benchmarks gated against committed baselines"
	@echo "trace-demo  6-process distributed trace: study + client/server sync"
	@echo "reproduce   study -> analyze -> validate, via the uucs CLI"
	@echo "examples    run every example script"
	@echo "clean       remove generated stores, caches, artifacts"

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Use the best linter available; offline containers may only have compileall.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	elif $(PYTHON) -m pyflakes --help >/dev/null 2>&1; then \
		$(PYTHON) -m pyflakes src tests benchmarks examples; \
	else \
		echo "ruff/pyflakes unavailable; falling back to compileall"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The CI bench-regression job, runnable locally: regenerate the perf
# reports into out/ and fail if any regressed >30% vs the committed
# baselines, or if the dashboard costs the push gateway more than its
# absolute overhead limit (see benchmarks/bench_check.py for what
# counts).
bench-check:
	mkdir -p out
	PYTHONPATH=src $(PYTHON) benchmarks/bench_study_shards.py \
		--out out/fresh-study.json --telemetry out/bench-traces
	PYTHONPATH=src $(PYTHON) benchmarks/bench_server.py --out out/fresh-server.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_dashboard.py --out out/fresh-dashboard.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scheduler.py --out out/fresh-scheduler.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_check.py BENCH_study.json out/fresh-study.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_check.py BENCH_server.json out/fresh-server.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_check.py BENCH_dashboard.json out/fresh-dashboard.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_check.py BENCH_scheduler.json out/fresh-scheduler.json

trace-demo:
	PYTHONPATH=src $(PYTHON) examples/trace_demo.py

reproduce:
	$(PYTHON) -m repro.cli study --users 33 --seed 2004 --results out/results
	$(PYTHON) -m repro.cli validate --results out/results
	$(PYTHON) -m repro.cli analyze --results out/results
	$(PYTHON) -m repro.cli import-db --results out/results --database out/results.sqlite

examples:
	for e in examples/*.py; do echo "== $$e"; $(PYTHON) $$e || exit 1; done

clean:
	rm -rf out .pytest_cache .hypothesis benchmarks/artifacts
	find . -name __pycache__ -type d -exec rm -rf {} +
